package channel

import (
	"math"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/fastmath"
	"mobiwlan/internal/geom"
)

// This file holds the batched struct-of-arrays response kernel: the two
// cache-backed evaluation strategies (direct and incremental) that replace
// the old per-(pair, subcarrier, path) series cache, plus the exact
// breakpoint power helper. responseUncached in channel.go stays the scalar
// reference both strategies are tested bit-for-bit against.
//
// Layout: all per-path cache state is struct-of-arrays, indexed
// [pair*nPaths+pi] — the memoized initial phasor (ph0), per-subcarrier
// rotation (rot) and path length (lens) are two complex128 and one float64
// per chain instead of the old Subcarriers-sized phasor series, so the
// whole working set (~16 KB at default dimensions, versus ~124 KB for the
// series) stays cache-resident. The ordered per-subcarrier partial sum of
// the leading unchanged paths is memoized once per pair in pref
// [pair*nSub+sc], which is what lets an environmental step pay only for
// the moving chains.
//
// Both strategies are organised as struct-of-arrays passes: antenna-leg
// distances, then per-path amplitudes, then the gathered breakpoint
// powers, then the phasor Sincos fill, then the subcarrier chain loop.
// Splitting the per-path work this way changes no per-value operation —
// each pass applies exactly the op subsequence the scalar reference
// applies to that value — but it puts consecutive long-latency calls
// (Pow's Log/Exp pair, Sincos) back to back in tight loops, so the CPU
// overlaps their dependency chains across paths instead of serialising
// one path's full pipeline at a time.
//
// Bit-identity argument (see DESIGN.md, "Batched SoA response kernel"):
// the value the uncached reference adds at subcarrier sc for path pi is
// the initial phasor advanced by sc sequential complex multiplies, and the
// per-subcarrier total is accumulated in path order. Both strategies below
// preserve exactly that: chains always advance by the same `*=` sequence
// from the same initial phasor (memoized or recomputed, the value is a
// pure function of (length, gain) and the fixed config), and every
// per-subcarrier sum is seeded with the memoized ordered prefix (itself
// produced by the same process) and extended in path order. The chain
// loop retires four subcarriers per pass over the paths, which reorders
// nothing: each chain still advances by the same multiply sequence, and
// each subcarrier's sum still adds the same values in path order — the
// four accumulators just live across one loop body instead of four.

// pow075 is math.Pow(x, 0.75) for positive finite x, as the exact
// operation sequence math's portable pow takes for y = 0.75: Modf(0.75)
// yields (0, 0.75), the yf > 0.5 rebalance makes (yi, yf) = (1, -0.25),
// so the result is Exp(-0.25*Log(x)) times one squaring-loop step (a1*x1,
// ae+xe). Skipping Pow's special-case ladder and Modf saves real time on
// the per-path breakpoint hot path without changing a single bit.
func pow075(x float64) float64 {
	x1, xe := math.Frexp(x)
	a1 := math.Exp(-0.25 * math.Log(x))
	a1 *= x1
	return math.Ldexp(a1, xe)
}

// pow075Exact reports whether pow075 reproduces math.Pow bit-for-bit on
// this platform, checked once over a deterministic probe set. True
// wherever math.Pow is the portable Go implementation (everything but
// s390x); if a platform ever diverges, the kernel falls back to math.Pow.
var pow075Exact = func() bool {
	x := 0.999999
	for i := 0; i < 256; i++ {
		if pow075(x) != math.Pow(x, 0.75) {
			return false
		}
		x *= 0.917
	}
	return true
}()

// fillLegs computes the client-independent (AP-side) and client-dependent
// antenna-leg distances for every bounce path in paths[lo:]. A bounce
// length is txPos.Dist(via) + via.Dist(rxPos); each Dist result depends
// on one antenna only, so computing each leg once per antenna and adding
// the memoized float64s per pair is the identical addition the scalar
// reference performs — pure-function memoization, not a reassociation.
func (m *Model) fillLegs(client geom.Point, lo int) {
	nPaths := len(m.paths)
	if m.sharedHot {
		// AP-side legs memoized fleet-wide at the primed instant
		// (sharedgeom.go): path pi is scatterer pi-1 by construction, so
		// the cached rows index straight in. Same Dist calls, same bits.
		nScat := nPaths - 1
		for txi := range m.apAnts {
			legs := m.legsTx[txi*nPaths : (txi+1)*nPaths]
			row := m.shared.legsTx[txi*nScat : (txi+1)*nScat]
			for pi := lo; pi < nPaths; pi++ {
				if m.paths[pi].bounce {
					legs[pi] = row[pi-1]
				}
			}
		}
	} else {
		for txi, txOff := range m.apAnts {
			txPos := m.ap.Add(txOff)
			legs := m.legsTx[txi*nPaths : (txi+1)*nPaths]
			for pi := lo; pi < nPaths; pi++ {
				if p := &m.paths[pi]; p.bounce {
					legs[pi] = txPos.Dist(p.via)
				}
			}
		}
	}
	for rxi, rxOff := range m.clientAnts {
		rxPos := client.Add(rxOff)
		legs := m.legsRx[rxi*nPaths : (rxi+1)*nPaths]
		for pi := lo; pi < nPaths; pi++ {
			if p := &m.paths[pi]; p.bounce {
				legs[pi] = p.via.Dist(rxPos)
			}
		}
	}
}

// breakpointPass multiplies the gathered breakpoint excess-loss factors
// into amps. Each amplitude gets exactly the scalar reference's op
// sequence — amp * pow(bp/length, (n-2)/2) when length > bp — but the
// Pow calls for all qualifying paths run back to back, so their long
// Log/Exp dependency chains overlap across paths.
func (m *Model) breakpointPass(amps, lens []float64, idx []int32, n int) {
	bp := m.cfg.PathLossBreakM
	if m.pow075OK {
		if pow4OK {
			// Quad path: gather qualifying ratios four at a time so the
			// Log→Exp chains overlap (pow4.go). Lanes are independent, so
			// grouping changes no bits; the tail runs the scalar pow075,
			// which the probes pin to the same outputs.
			var rx [4]float64
			var ri [4]int32
			nq := 0
			for i := 0; i < n; i++ {
				pi := idx[i]
				if length := lens[pi]; length > bp {
					rx[nq] = bp / length
					ri[nq] = pi
					nq++
					if nq == 4 {
						y0, y1, y2, y3 := pow075x4(rx[0], rx[1], rx[2], rx[3])
						amps[ri[0]] *= y0
						amps[ri[1]] *= y1
						amps[ri[2]] *= y2
						amps[ri[3]] *= y3
						nq = 0
					}
				}
			}
			for k := 0; k < nq; k++ {
				amps[ri[k]] *= pow075(rx[k])
			}
			return
		}
		for i := 0; i < n; i++ {
			pi := idx[i]
			if length := lens[pi]; length > bp {
				amps[pi] *= pow075(bp / length)
			}
		}
		return
	}
	pe := (m.cfg.PathLossExponent - 2) / 2
	for i := 0; i < n; i++ {
		pi := idx[i]
		if length := lens[pi]; length > bp {
			amps[pi] *= math.Pow(bp/length, pe)
		}
	}
}

// phasorPass fills ph0/rot for the paths named by idx[:n] from their
// cached lengths and amplitudes: the initial phasor amp·e^{-j2πf0L/c} and
// the per-subcarrier rotation e^{-j2πΔfL/c}, exactly as cmplx.Rect
// builds them (Sincos, then the r·cos / r·sin products; the rotation's
// unit radius makes its products the Sincos results themselves).
func (m *Model) phasorPass(amps, lens []float64, ph0, rot []complex128, idx []int32, n int) {
	// k0/kd fold the constant prefix of the reference's angle expression
	// -2·π·f·length/c; the remaining ·length and /c stay separate ops in
	// the reference's order, so the angle is bit-identical.
	k0 := -2 * math.Pi * m.f0
	kd := -2 * math.Pi * m.df
	if fastmath.SincosExact {
		// Branchless transcription of math.Sincos (fastmath): same bits,
		// no octant mispredicts, and consecutive calls overlap.
		for i := 0; i < n; i++ {
			pi := idx[i]
			length := lens[pi]
			amp := amps[pi]
			s0, c0 := fastmath.Sincos(k0 * length / SpeedOfLight)
			sd, cd := fastmath.Sincos(kd * length / SpeedOfLight)
			ph0[pi] = complex(amp*c0, amp*s0)
			rot[pi] = complex(cd, sd)
		}
		return
	}
	for i := 0; i < n; i++ {
		pi := idx[i]
		length := lens[pi]
		amp := amps[pi]
		s0, c0 := math.Sincos(k0 * length / SpeedOfLight)
		sd, cd := math.Sincos(kd * length / SpeedOfLight)
		ph0[pi] = complex(amp*c0, amp*s0)
		rot[pi] = complex(cd, sd)
	}
}

// evalDirect recomputes every path chain: the client moved (or the cache
// is cold), so every pair's path lengths changed and no per-path state is
// reusable. The freshly computed (length, ph0, rot) triples are stored
// into the per-(pair, path) memo so the next incremental call can reuse
// them, and the prefix memo is invalidated.
//
//mobilint:hotpath
func (m *Model) evalDirect(client geom.Point, h *csi.Matrix) {
	c := &m.cache
	nPaths := len(m.paths)
	nSub := m.cfg.Subcarriers
	nPairs := m.cfg.NTx * m.cfg.NRx
	lambdaScale := m.cfg.Wavelength() / (4 * math.Pi)
	bpActive := m.cfg.PathLossBreakM > 0 && m.cfg.PathLossExponent > 2
	data := h.Data()

	m.fillLegs(client, 0)
	// Every path is recomputed, so the pass index set is the identity.
	idx := m.powIdx[:nPaths]
	for pi := range idx {
		idx[pi] = int32(pi)
	}

	for txi, txOff := range m.apAnts {
		txPos := m.ap.Add(txOff)
		legsTx := m.legsTx[txi*nPaths : (txi+1)*nPaths]
		for rxi, rxOff := range m.clientAnts {
			rxPos := client.Add(rxOff)
			legsRx := m.legsRx[rxi*nPaths : (rxi+1)*nPaths]
			pair := txi*m.cfg.NRx + rxi
			lens := c.lens[pair*nPaths : (pair+1)*nPaths]
			ph0 := c.ph0[pair*nPaths : (pair+1)*nPaths]
			rot := c.rot[pair*nPaths : (pair+1)*nPaths]
			amps := m.amps[:nPaths]

			// Lengths and base amplitudes.
			for pi := range m.paths {
				p := &m.paths[pi]
				var length float64
				if p.bounce {
					length = legsTx[pi] + legsRx[pi]
				} else {
					length = txPos.Dist(rxPos)
				}
				if length < 0.1 {
					length = 0.1
				}
				lens[pi] = length
				amps[pi] = p.gain * lambdaScale / length
			}
			if bpActive {
				m.breakpointPass(amps, lens, idx, nPaths)
			}
			m.phasorPass(amps, lens, ph0, rot, idx, nPaths)

			if m.fused {
				// Scatter this pair's chains into the path-major rows the
				// fused sweep walks; the sweep itself runs after all pairs'
				// phasors are in place.
				for pi := 0; pi < nPaths; pi++ {
					m.contribsP[pi*nPairs+pair] = ph0[pi]
					m.rotsP[pi*nPairs+pair] = rot[pi]
				}
				continue
			}
			m.contribs = append(m.contribs[:0], ph0...)
			chainSweep(data[pair:], m.contribs, rot[:nPaths], nSub, nPairs)
		}
	}
	if m.fused {
		m.sweepFused(data, c.pref, nSub, nPairs, nPaths, 0, 0, c.shadowScale)
	}
	c.pathEvals += uint64(nPairs * nPaths)
	c.prefValid = false
	c.prefLen = 0
}

// sweepFused runs the chain sweep for every antenna pair at once on the
// path-major scratch, two pair columns per AVX2 kernel call and four
// subcarriers per pass. Each (subcarrier, pair) cell still receives
// exactly the path-order sum of exactly the same chain values — the
// kernel's lanes are independent pairs and its complex multiply matches
// the compiler's operand order per lane (chainquad_amd64.s) — so fusing
// pairs changes no bits, it only removes the per-pair passes over the
// chain state. out rows are the natural CSI layout (pair-contiguous per
// subcarrier); pref rows use the same sc-major layout when fused.
//
// n is the chain-row count, snap the row count whose running sums extend
// the prefix memo (0 outside incremental calls), seed nonzero to start
// the sums from the memoized prefix. scale is the shadowing factor the
// kernel folds into the finished sums (Matrix.Scale's exact per-entry
// operation, applied after the unscaled prefix snapshot), replacing the
// separate whole-matrix Scale pass.
//
//mobilint:hotpath
func (m *Model) sweepFused(out, pref []complex128, nSub, nPairs, n, snap, seed int, scale float64) {
	stride := uintptr(nPairs) * 16
	for sc := 0; sc < nSub; sc += 4 {
		row := sc * nPairs
		for po := 0; po < nPairs; po += 2 {
			chainQuad2(&m.contribsP[po], &m.rotsP[po], &out[row+po], &pref[row+po], stride, n, snap, seed, scale)
		}
	}
}

// chainSweep advances every chain in contribs by its rotation across nSub
// subcarriers, writing the per-subcarrier path-order sums to out[sc*stride].
// Four subcarriers retire per pass over the chains: each chain value is
// loaded once, advanced by the same four sequential multiplies the
// one-subcarrier loop would apply, and stored once, while four
// accumulators collect the four subcarriers' sums — same multiply
// sequence per chain, same addition order per subcarrier, a quarter of
// the chain-state memory traffic, and four independent accumulation
// chains for the FPU to overlap.
//
//mobilint:hotpath
func chainSweep(out, contribs, rots []complex128, nSub, stride int) {
	rots = rots[:len(contribs)]
	idx := 0
	sc := 0
	for ; sc+4 <= nSub; sc += 4 {
		var s0, s1, s2, s3 complex128
		for pi := range contribs {
			ci := contribs[pi]
			r := rots[pi]
			s0 += ci
			ci *= r
			s1 += ci
			ci *= r
			s2 += ci
			ci *= r
			s3 += ci
			ci *= r
			contribs[pi] = ci
		}
		out[idx] = s0
		idx += stride
		out[idx] = s1
		idx += stride
		out[idx] = s2
		idx += stride
		out[idx] = s3
		idx += stride
	}
	for ; sc < nSub; sc++ {
		var sum complex128
		for pi := range contribs {
			sum += contribs[pi]
			contribs[pi] *= rots[pi]
		}
		out[idx] = sum
		idx += stride
	}
}

// evalIncremental serves a call where the client is unchanged but some
// scatterers moved. Paths split at `first`, the lowest index whose epoch
// key (via position, gain) changed: an unchanged via and gain imply an
// unchanged length for every antenna pair (the client did not move, the
// AP never does), hence a bit-identical phasor series.
//
//   - Paths [0, start) are served by the memoized ordered prefix sum: the
//     per-subcarrier accumulator is seeded with pref, skipping their
//     chains entirely.
//   - Paths [start, first) re-run their chains from the memoized (ph0,
//     rot) phasors — no length, breakpoint, or Sincos work — while the
//     running sum is snapshotted at the `first` boundary to extend the
//     prefix for the next call.
//   - Paths [first, nPaths) are re-keyed on (length, gain) exactly like
//     the old per-path cache: an unchanged key reuses the memoized
//     phasors, a changed one recomputes and overwrites them.
//
// The accumulation order over paths is untouched in all three regions, so
// the output is bit-identical to the scalar reference.
//
//mobilint:hotpath
func (m *Model) evalIncremental(client geom.Point, h *csi.Matrix) {
	c := &m.cache
	nPaths := len(m.paths)
	nSub := m.cfg.Subcarriers
	nPairs := m.cfg.NTx * m.cfg.NRx

	first := 0
	for first < nPaths {
		p := m.paths[first]
		if p.via != c.vias[first] || p.gain != c.gains[first] {
			break
		}
		first++
	}
	start := 0
	if c.prefValid && c.prefLen <= first {
		start = c.prefLen
	}

	lambdaScale := m.cfg.Wavelength() / (4 * math.Pi)
	bpActive := m.cfg.PathLossBreakM > 0 && m.cfg.PathLossExponent > 2
	data := h.Data()
	m.fillLegs(client, first)
	for txi, txOff := range m.apAnts {
		txPos := m.ap.Add(txOff)
		legsTx := m.legsTx[txi*nPaths : (txi+1)*nPaths]
		for rxi, rxOff := range m.clientAnts {
			rxPos := client.Add(rxOff)
			legsRx := m.legsRx[rxi*nPaths : (rxi+1)*nPaths]
			pair := txi*m.cfg.NRx + rxi
			lens := c.lens[pair*nPaths : (pair+1)*nPaths]
			ph0 := c.ph0[pair*nPaths : (pair+1)*nPaths]
			rot := c.rot[pair*nPaths : (pair+1)*nPaths]
			pref := c.pref[pair*nSub : (pair+1)*nSub]
			amps := m.amps[:nPaths]

			// Re-key the suffix: (length, gain) fully determine the phasor
			// pair — amp is a pure function of them and the fixed config.
			// Gains are compared against the previous epoch's values
			// (c.gains is only rewritten by commit), so every pair sees the
			// same stale-or-fresh verdict. Changed paths are gathered and
			// rebuilt by the batched passes below.
			nb := 0
			idx := m.powIdx[:nPaths]
			for pi := first; pi < nPaths; pi++ {
				p := &m.paths[pi]
				var length float64
				if p.bounce {
					length = legsTx[pi] + legsRx[pi]
				} else {
					length = txPos.Dist(rxPos)
				}
				if length < 0.1 {
					length = 0.1
				}
				if length == lens[pi] && p.gain == c.gains[pi] {
					c.pathReuses++
				} else {
					c.pathEvals++
					lens[pi] = length
					amps[pi] = p.gain * lambdaScale / length
					idx[nb] = int32(pi)
					nb++
				}
			}
			c.pathReuses += uint64(first)
			if bpActive {
				m.breakpointPass(amps, lens, idx, nb)
			}
			m.phasorPass(amps, lens, ph0, rot, idx, nb)

			// Gather the chains to run: memoized phasors for paths
			// [start, first), fresh-or-reused phasors for [first, nPaths).
			if m.fused {
				for pi := start; pi < nPaths; pi++ {
					rowBase := (pi - start) * nPairs
					m.contribsP[rowBase+pair] = ph0[pi]
					m.rotsP[rowBase+pair] = rot[pi]
				}
				continue
			}
			m.contribs = m.contribs[:0]
			m.rots = m.rots[:0]
			for pi := start; pi < nPaths; pi++ {
				m.contribs = append(m.contribs, ph0[pi])
				m.rots = append(m.rots, rot[pi])
			}
			chainSweepPrefixed(data[pair:], pref, m.contribs, m.rots,
				nSub, nPairs, start, first-start)
		}
	}
	if m.fused {
		seed := 0
		if start > 0 {
			seed = 1
		}
		m.sweepFused(data, c.pref, nSub, nPairs, nPaths-start, first-start, seed, c.shadowScale)
	}
	c.prefLen = first
	c.prefValid = true
}

// chainSweepPrefixed is chainSweep with prefix seeding: each subcarrier's
// accumulator starts from the memoized ordered prefix (when start > 0),
// runs the first snap chains and snapshots the extended prefix at that
// boundary, then finishes with the remaining chains. Same four-subcarrier
// retirement as chainSweep; the snapshot values are exactly the sums the
// one-subcarrier loop would snapshot. When snap is 0 the prefix is
// already exactly pref's contents, so the (bit-identical) store is
// skipped.
//
//mobilint:hotpath
func chainSweepPrefixed(out, pref, contribs, rots []complex128, nSub, stride, start, snap int) {
	rots = rots[:len(contribs)]
	idx := 0
	sc := 0
	for ; sc+4 <= nSub; sc += 4 {
		var s0, s1, s2, s3 complex128
		if start > 0 {
			s0, s1, s2, s3 = pref[sc], pref[sc+1], pref[sc+2], pref[sc+3]
		}
		for pi := 0; pi < snap; pi++ {
			ci := contribs[pi]
			r := rots[pi]
			s0 += ci
			ci *= r
			s1 += ci
			ci *= r
			s2 += ci
			ci *= r
			s3 += ci
			ci *= r
			contribs[pi] = ci
		}
		if snap > 0 {
			pref[sc], pref[sc+1], pref[sc+2], pref[sc+3] = s0, s1, s2, s3
		}
		for pi := snap; pi < len(contribs); pi++ {
			ci := contribs[pi]
			r := rots[pi]
			s0 += ci
			ci *= r
			s1 += ci
			ci *= r
			s2 += ci
			ci *= r
			s3 += ci
			ci *= r
			contribs[pi] = ci
		}
		out[idx] = s0
		idx += stride
		out[idx] = s1
		idx += stride
		out[idx] = s2
		idx += stride
		out[idx] = s3
		idx += stride
	}
	for ; sc < nSub; sc++ {
		var sum complex128
		if start > 0 {
			sum = pref[sc]
		}
		for pi := 0; pi < snap; pi++ {
			sum += contribs[pi]
			contribs[pi] *= rots[pi]
		}
		if snap > 0 {
			pref[sc] = sum
		}
		for pi := snap; pi < len(contribs); pi++ {
			sum += contribs[pi]
			contribs[pi] *= rots[pi]
		}
		out[idx] = sum
		idx += stride
	}
}
