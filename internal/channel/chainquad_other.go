//go:build !amd64

package channel

// fusedSweepOK gates the fused all-pairs chain sweep; the AVX2 kernel
// only exists on amd64, so every other platform keeps the per-pair Go
// sweep.
const fusedSweepOK = false

// chainQuad2 matches the amd64 declaration so kernel.go compiles
// everywhere; unreachable because fusedSweepOK is constant false (and
// Model.fused therefore never set).
func chainQuad2(contribs, rots, out, pref *complex128, stride uintptr, n, snap, seed int, scale float64) {
	panic("channel: chainQuad2 without AVX2")
}
