// Package channel implements the geometric multipath wireless channel
// simulator that substitutes for the paper's testbed radio environment.
//
// The model is ray-based: the signal between each AP antenna and each
// client antenna propagates along a line-of-sight path plus one
// single-bounce path per scatterer. Each path contributes a complex gain
// with free-space amplitude decay and a phase proportional to its length in
// carrier wavelengths, evaluated per OFDM subcarrier. This reproduces the
// mechanisms the paper's classifier depends on:
//
//   - When nothing moves, the channel frequency response is constant up to
//     estimation noise, so consecutive CSI snapshots are nearly identical.
//   - When a person walks nearby (environmental mobility), only the paths
//     bounced off that person change, so the CSI profile changes partially.
//   - When the device itself moves even a few centimeters (one wavelength
//     at 5.8 GHz is 5.2 cm), every path length changes and the CSI profile
//     decorrelates completely — regardless of whether the motion is micro
//     or macro, which is why CSI alone cannot separate those two.
//
// RSSI, SNR, distance (for ToF) and position-dependent log-normal
// shadowing are derived from the same geometry.
package channel

import (
	"math"
	"math/cmplx"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
)

// SpeedOfLight in meters per second.
const SpeedOfLight = 299792458.0

// Config holds the radio parameters of a link.
type Config struct {
	// CarrierHz is the center frequency. The paper tunes to 5.825 GHz.
	CarrierHz float64
	// BandwidthHz is the channel width (40 MHz in the paper).
	BandwidthHz float64
	// Subcarriers is the number of reported CSI subcarriers (52 on the
	// AR9390, matching the paper).
	Subcarriers int
	// NTx and NRx are the AP and client antenna counts (3x2 in the paper).
	NTx, NRx int
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// NoiseFloorDBm is the receiver noise floor over the full bandwidth.
	NoiseFloorDBm float64
	// CSINoiseSNRdB is the effective SNR of CSI estimation; per-subcarrier
	// estimation noise is scaled so that a static channel's similarity
	// saturates just below 1, as observed on real chipsets.
	CSINoiseSNRdB float64
	// ShadowSigmaDB is the standard deviation of position-dependent
	// log-normal shadowing.
	ShadowSigmaDB float64
	// ShadowCorrLen is the spatial decorrelation length of shadowing in
	// meters.
	ShadowCorrLen float64
	// RSSIQuantDB quantizes reported RSSI (1 dB on commodity hardware).
	RSSIQuantDB float64
	// RSSINoiseDB is the per-report RSSI measurement noise stddev.
	RSSINoiseDB float64
	// PathLossExponent is the indoor distance-power law: beyond
	// PathLossBreakM, path amplitudes decay as d^(-n/2) instead of the
	// free-space d^(-1) (walls, furniture, people absorb energy).
	PathLossExponent float64
	// PathLossBreakM is the breakpoint distance in meters.
	PathLossBreakM float64
	// LoSGain scales the line-of-sight path amplitude: 1 is a clear
	// line of sight; lower values model clutter/blockage (cubicle walls,
	// people) that makes the channel multipath-dominated — Rician with a
	// small K factor. 0 removes the LoS entirely (pure NLOS).
	LoSGain float64
	// DisableCache turns off the coherence-aware response cache and
	// recomputes every path on every call — the pre-cache behaviour, kept
	// for benchmarking and for the cache equivalence tests. Cached and
	// uncached responses are bit-identical (see DESIGN.md, "Channel
	// coherence cache"), so this flag never changes results, only cost.
	DisableCache bool
}

// DefaultConfig mirrors the paper's testbed: HP MSM 460 (3 antennas,
// AR9390) at 5.825 GHz / 40 MHz talking to a 2-antenna Galaxy S5.
func DefaultConfig() Config {
	return Config{
		CarrierHz:     5.825e9,
		BandwidthHz:   40e6,
		Subcarriers:   52,
		NTx:           3,
		NRx:           2,
		TxPowerDBm:    18,
		NoiseFloorDBm: -92, // kTB + NF over 40 MHz
		CSINoiseSNRdB: 31,
		ShadowSigmaDB: 3,
		ShadowCorrLen: 8,
		RSSIQuantDB:   1,
		RSSINoiseDB:   0.7,

		PathLossExponent: 3.5,
		PathLossBreakM:   5,
		LoSGain:          1,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (c Config) Wavelength() float64 { return SpeedOfLight / c.CarrierHz }

// Sample is one PHY-layer observation of the link, as an AP would collect
// from a client transmission (data or ACK).
type Sample struct {
	// Time is the observation time in seconds.
	Time float64
	// CSI is the noisy channel estimate.
	CSI *csi.Matrix
	// RSSIdBm is the reported received signal strength.
	RSSIdBm float64
	// SNRdB is the wideband signal-to-noise ratio implied by the RSSI.
	SNRdB float64
	// Distance is the true AP-client distance in meters (consumed by the
	// ToF model, never exposed to protocols directly).
	Distance float64
}

// Model is the channel between one AP and one client for a given scenario.
// It is deterministic: the same scenario, config and seed produce the same
// sample stream.
//
// A Model is NOT safe for concurrent use: Measure advances the noise RNG,
// and the hot-path methods reuse per-model scratch. Parallel trials must
// build one Model each (as internal/parallel's RNG-split contract already
// requires).
type Model struct {
	cfg    Config
	ap     geom.Point
	scen   *mobility.Scenario
	noise  *stats.RNG
	shadow *shadowField

	apAnts     []geom.Vector // antenna offsets from the AP position
	clientAnts []geom.Vector // antenna offsets from the client position
	subFreqs   []float64     // absolute subcarrier frequencies

	// losGain is the effective line-of-sight gain: Config.LoSGain with the
	// zero-value-Config fallback applied once at construction instead of
	// per Response call.
	losGain float64
	// f0 and df are the first subcarrier frequency and the per-subcarrier
	// increment, hoisted from the response loop.
	f0, df float64
	// csiNoiseScale is 10^(-CSINoiseSNRdB/20), hoisted from MeasureInto.
	csiNoiseScale float64
	// pow075OK enables the exact x^0.75 breakpoint fast path: the
	// configured exponent must map to 0.75 and the platform's math.Pow
	// must match pow075 bit-for-bit (see kernel.go).
	pow075OK bool

	// paths is per-call scratch for the response computation (LoS plus one
	// bounce per scatterer), reused across calls so the steady-state hot
	// path does not allocate.
	paths []path
	// contribs and rots are the per-path phasor accumulators and rotation
	// steps for one antenna pair. Keeping all paths' phasor chains in
	// flight at once (advanced together per subcarrier) turns the
	// latency-bound serial rotation into independent chains without
	// changing a single floating-point operation or its order.
	contribs, rots []complex128
	// legsTx/legsRx, amps and powIdx are pass scratch for the batched
	// kernel (kernel.go): per-antenna bounce-leg distances at
	// [anti*nPaths+pi], per-path amplitudes, and the gathered path-index
	// set the breakpoint/phasor passes operate on. Sized alongside the
	// cache's per-path state.
	legsTx, legsRx []float64
	amps           []float64
	powIdx         []int32
	// contribsP/rotsP are path-major scratch for the fused all-pairs
	// sweep: chain row j holds every pair's value for one path at
	// [j*nPairs+pair], so the AVX2 kernel (chainquad_amd64.s) walks all
	// pairs' chains in lockstep. Only populated when fused is set.
	contribsP, rotsP []complex128
	// fused selects the AVX2 all-pairs chain sweep. Fixed at
	// construction, because the prefix memo's layout depends on it
	// (sc-major rows when fused, per-pair runs otherwise) and must stay
	// consistent for the cache's lifetime.
	fused bool
	// rssiScratch backs MeanRSSI/SNRdB, which need a response matrix but
	// expose only scalars derived from it.
	rssiScratch *csi.Matrix

	// shared is the optional fleet-wide geometry cache (sharedgeom.go);
	// sharedHot is true while the current ResponseInto call's time
	// matches the primed instant, so fillLegs reads the memoized AP-side
	// legs instead of recomputing them. Set per call.
	shared    *SharedGeometry
	sharedHot bool

	// cache is the coherence-aware response cache (see DESIGN.md, "Channel
	// coherence cache"). Like the scratch slices above, it belongs to the
	// goroutine that owns the Model and must never be shared.
	cache respCache
}

// respCache memoizes the last noise-free response so that repeated
// ResponseInto calls pay only for the geometry that actually changed.
//
// Two levels:
//
//   - Epoch level: if the client position and every path endpoint (gain +
//     scatterer position) are unchanged since the previous call, the
//     previous post-shadow matrix is copied out verbatim. Static trials
//     collapse to one real evaluation per epoch.
//   - Path level: otherwise the struct-of-arrays kernel (kernel.go) runs
//     one of two strategies. If the client moved, every path length
//     changed, so evalDirect recomputes everything while refreshing the
//     per-(pair, path) phasor memo. If only scatterers moved,
//     evalIncremental seeds each subcarrier's accumulator with the
//     memoized ordered prefix sum of the leading unchanged paths and
//     re-keys only the paths at and after the first change on (length,
//     gain) — environmental trials pay only for the moving chains. The
//     summation still runs over all paths in the original order, so the
//     output is bit-identical to an uncached evaluation.
//
// The cache never covers noise: MeasureInto draws its Gaussians after
// ResponseInto returns, so RNG draw order is untouched by hits or misses.
type respCache struct {
	// epochValid gates the epoch-level fast path; client/vias/gains are the
	// epoch key, resp the post-shadow matrix it produced.
	epochValid bool
	client     geom.Point
	vias       []geom.Point
	gains      []float64
	resp       *csi.Matrix

	// nPaths is the path count the per-path state below is sized for; a
	// change (scatterer appearance/removal) resizes and poisons lens.
	nPaths int
	// lens holds the cached path length per (pair, path) at
	// lens[pair*nPaths+pi]; NaN forces a recompute (NaN == x is false for
	// every x, including NaN).
	lens []float64
	// ph0 and rot memoize each chain's initial phasor and per-subcarrier
	// rotation at [pair*nPaths+pi] — the struct-of-arrays replacement for
	// the old per-subcarrier series (two complex128 per chain instead of
	// Subcarriers of them).
	ph0, rot []complex128
	// pref memoizes, at [pair*nSub+sc], the ordered per-subcarrier partial
	// sum of paths [0, prefLen) — always a prefix of the path order, so
	// seeding an accumulator with it preserves the exact addition sequence.
	pref      []complex128
	prefLen   int
	prefValid bool

	// shadowDB/shadowScale memoize the 10^(dB/20) conversion of the last
	// shadow-field value; shadowOK distinguishes "never computed" from a
	// genuine 0 dB. Same input, same Pow, same bits.
	shadowDB    float64
	shadowScale float64
	shadowOK    bool

	hits, misses, pathEvals, pathReuses uint64
}

// CacheStats reports response-cache effectiveness counters.
type CacheStats struct {
	// Hits counts epoch-level hits (whole response copied from cache).
	Hits uint64
	// Misses counts calls that re-entered the per-path evaluation.
	Misses uint64
	// PathEvals counts per-(pair,path) phasor chains recomputed.
	PathEvals uint64
	// PathReuses counts per-(pair,path) phasor chains served from cache.
	PathReuses uint64
}

// CacheStats returns the model's response-cache counters. All zeros when
// the cache is disabled.
func (m *Model) CacheStats() CacheStats {
	return CacheStats{
		Hits:       m.cache.hits,
		Misses:     m.cache.misses,
		PathEvals:  m.cache.pathEvals,
		PathReuses: m.cache.pathReuses,
	}
}

// path is one propagation path: the line of sight or a single bounce via a
// scatterer position.
type path struct {
	gain   float64 // amplitude
	via    geom.Point
	bounce bool
}

// New builds a channel model between the scenario's AP and client.
func New(cfg Config, scen *mobility.Scenario, rng *stats.RNG) *Model {
	return NewAt(cfg, scen.AP, scen, rng)
}

// NewAt builds a channel model between an arbitrary AP position and the
// scenario's client — used by the roaming simulator, where several APs
// observe the same walking client.
func NewAt(cfg Config, ap geom.Point, scen *mobility.Scenario, rng *stats.RNG) *Model {
	m := &Model{
		cfg:    cfg,
		ap:     ap,
		scen:   scen,
		noise:  rng.Split(0x6e6f6973), // "nois"
		shadow: newShadowField(cfg.ShadowSigmaDB, cfg.ShadowCorrLen, rng.Split(0x73686164)),
	}
	lambda := cfg.Wavelength()
	// Uniform linear arrays spaced half a wavelength along x (AP) and y
	// (client) so antenna pairs see distinct geometry.
	for i := 0; i < cfg.NTx; i++ {
		m.apAnts = append(m.apAnts, geom.Vec(float64(i)*lambda/2, 0))
	}
	for i := 0; i < cfg.NRx; i++ {
		m.clientAnts = append(m.clientAnts, geom.Vec(0, float64(i)*lambda/2))
	}
	m.subFreqs = make([]float64, cfg.Subcarriers)
	for i := range m.subFreqs {
		frac := (float64(i) - float64(cfg.Subcarriers-1)/2) / float64(cfg.Subcarriers)
		m.subFreqs[i] = cfg.CarrierHz + frac*cfg.BandwidthHz
	}
	m.losGain = cfg.LoSGain
	if m.losGain == 0 && cfg.PathLossExponent == 0 {
		// Zero-value Config: keep the zero-config behaviour sane. A
		// deliberate pure-NLOS setup (LoSGain 0 with a configured path-loss
		// exponent) is left alone.
		m.losGain = 1
	}
	m.f0 = m.subFreqs[0]
	if len(m.subFreqs) > 1 {
		m.df = m.subFreqs[1] - m.subFreqs[0]
	}
	m.csiNoiseScale = math.Pow(10, -cfg.CSINoiseSNRdB/20)
	m.pow075OK = (cfg.PathLossExponent-2)/2 == 0.75 && pow075Exact
	// The AVX2 fused sweep walks pair columns two at a time over whole
	// four-subcarrier groups; other shapes keep the per-pair Go sweep.
	m.fused = fusedSweepOK && cfg.NTx*cfg.NRx%2 == 0 && cfg.Subcarriers > 0 && cfg.Subcarriers%4 == 0
	m.paths = make([]path, 0, 1+len(scen.Scatterers))
	m.contribs = make([]complex128, 0, 1+len(scen.Scatterers))
	m.rots = make([]complex128, 0, 1+len(scen.Scatterers))
	return m
}

// Config returns the model's radio configuration.
func (m *Model) Config() Config { return m.cfg }

// AP returns the AP position this model observes from.
func (m *Model) AP() geom.Point { return m.ap }

// Distance returns the true AP-client distance at time t.
func (m *Model) Distance(t float64) float64 {
	return m.scen.Client.At(t).Dist(m.ap)
}

// Response computes the true (noise-free) CSI matrix at time t into a
// freshly allocated matrix. Hot paths should prefer ResponseInto with a
// reused buffer.
func (m *Model) Response(t float64) *csi.Matrix {
	return m.ResponseInto(t, nil)
}

// ResponseInto computes the true (noise-free) CSI matrix at time t into h
// and returns h. A nil h is replaced by a freshly allocated matrix; a
// non-nil h must have the model's dimensions and is overwritten in full.
// Steady-state callers that pass the previous return value back in never
// allocate. The per-call path scratch lives on the Model, which is why a
// Model must not be shared between goroutines.
//
//mobilint:hotpath
func (m *Model) ResponseInto(t float64, h *csi.Matrix) *csi.Matrix {
	client := m.scen.Client.At(t)
	if h == nil {
		h = csi.NewMatrix(m.cfg.Subcarriers, m.cfg.NTx, m.cfg.NRx)
	} else if h.Subcarriers != m.cfg.Subcarriers || h.NTx != m.cfg.NTx || h.NRx != m.cfg.NRx {
		// No Zero() on reuse: every evaluation strategy overwrites the
		// full matrix.
		panic("channel: ResponseInto buffer has wrong dimensions for this model")
	}

	// Gather path endpoints once: LoS plus one bounce per scatterer. When
	// the shared-geometry cache is primed at exactly this instant, the
	// memoized Traj.At values substitute for recomputing them — identical
	// bits by pure-function memoization (sharedgeom.go).
	m.sharedHot = m.shared != nil && m.shared.primed && m.shared.t == t
	m.paths = m.paths[:0]
	m.paths = append(m.paths, path{gain: m.losGain})
	if m.sharedHot {
		vias := m.shared.vias
		for si, sc := range m.scen.Scatterers {
			m.paths = append(m.paths, path{gain: sc.Reflectivity, via: vias[si], bounce: true})
		}
	} else {
		for _, sc := range m.scen.Scatterers {
			m.paths = append(m.paths, path{gain: sc.Reflectivity, via: sc.Traj.At(t), bounce: true})
		}
	}

	if m.cfg.DisableCache {
		m.responseUncached(client, h)
	} else {
		m.responseCached(client, h)
	}
	return h
}

// responseUncached is the pre-cache evaluation: every path's phasor chain
// is recomputed on every call. It is kept verbatim as the reference the
// cached path must match bit-for-bit.
func (m *Model) responseUncached(client geom.Point, h *csi.Matrix) {
	lambdaScale := m.cfg.Wavelength() / (4 * math.Pi)
	data := h.Data()
	stride := m.cfg.NTx * m.cfg.NRx
	for txi, txOff := range m.apAnts {
		txPos := m.ap.Add(txOff)
		for rxi, rxOff := range m.clientAnts {
			rxPos := client.Add(rxOff)
			// Phase at the first subcarrier, then rotate by a constant
			// per-subcarrier increment (avoids a sincos per subcarrier).
			m.contribs = m.contribs[:0]
			m.rots = m.rots[:0]
			for _, p := range m.paths {
				var length float64
				if p.bounce {
					length = txPos.Dist(p.via) + p.via.Dist(rxPos)
				} else {
					length = txPos.Dist(rxPos)
				}
				if length < 0.1 {
					length = 0.1
				}
				amp := p.gain * lambdaScale / length
				// Indoor excess path loss beyond the breakpoint.
				if bp := m.cfg.PathLossBreakM; bp > 0 && length > bp && m.cfg.PathLossExponent > 2 {
					amp *= math.Pow(bp/length, (m.cfg.PathLossExponent-2)/2)
				}
				m.contribs = append(m.contribs, cmplx.Rect(amp, -2*math.Pi*m.f0*length/SpeedOfLight))
				m.rots = append(m.rots, cmplx.Rect(1, -2*math.Pi*m.df*length/SpeedOfLight))
			}
			// Advance every path's phasor chain together, one subcarrier
			// per step. The per-path multiply sequence and the per-entry
			// path-order summation are identical to rotating each path
			// independently, so the result is bit-for-bit the same — but
			// the chains are now independent across paths, so the FPU
			// pipelines them instead of stalling on one chain's latency.
			contribs, rots := m.contribs, m.rots
			idx := txi*m.cfg.NRx + rxi
			for sc := 0; sc < m.cfg.Subcarriers; sc++ {
				sum := complex(0, 0)
				for pi := range contribs {
					sum += contribs[pi]
					contribs[pi] *= rots[pi]
				}
				data[idx] = sum
				idx += stride
			}
		}
	}

	// Apply position-dependent shadowing as a real wideband gain factor.
	shadowDB := m.shadow.at(client)
	h.Scale(math.Pow(10, shadowDB/20))
}

// responseCached evaluates the response through the coherence cache: a
// whole-matrix copy on an epoch hit, otherwise one of the two batched
// kernel strategies (kernel.go) followed by the same path-order summation
// as the uncached path. See respCache for the bit-identity argument.
func (m *Model) responseCached(client geom.Point, h *csi.Matrix) {
	c := &m.cache
	nPaths := len(m.paths)
	nSub := m.cfg.Subcarriers
	nPairs := m.cfg.NTx * m.cfg.NRx

	if c.resp == nil {
		c.resp = csi.NewMatrix(nSub, m.cfg.NTx, m.cfg.NRx)
	}
	//mobilint:coldstart scatterer count changes resize per-path state once, then every slot is reused
	if nPaths != c.nPaths {
		// Scatterer appearance/removal: resize the per-path state and
		// poison every cached length so each slot recomputes once.
		c.nPaths = nPaths
		c.vias = make([]geom.Point, nPaths)
		c.gains = make([]float64, nPaths)
		c.lens = make([]float64, nPairs*nPaths)
		for i := range c.lens {
			c.lens[i] = math.NaN()
		}
		c.ph0 = make([]complex128, nPairs*nPaths)
		c.rot = make([]complex128, nPairs*nPaths)
		m.legsTx = make([]float64, m.cfg.NTx*nPaths)
		m.legsRx = make([]float64, m.cfg.NRx*nPaths)
		m.amps = make([]float64, nPaths)
		m.powIdx = make([]int32, nPaths)
		if m.fused {
			m.contribsP = make([]complex128, nPairs*nPaths)
			m.rotsP = make([]complex128, nPairs*nPaths)
		}
		if c.pref == nil {
			c.pref = make([]complex128, nPairs*nSub)
		}
		c.epochValid = false
		c.prefValid = false
	}

	if c.epochValid && client == c.client && c.sameGeometry(m.paths) {
		c.hits++
		copy(h.Data(), c.resp.Data())
		return
	}
	c.misses++

	// Resolve the position-dependent shadowing factor first: it depends
	// only on the client position, and the fused sweep folds it into the
	// finished sums (the exact Matrix.Scale per-entry operation) instead
	// of re-walking the matrix in a separate pass.
	shadowDB := m.shadow.at(client)
	if !c.shadowOK || shadowDB != c.shadowDB {
		c.shadowDB = shadowDB
		c.shadowScale = math.Pow(10, shadowDB/20)
		c.shadowOK = true
	}

	if !c.epochValid || client != c.client {
		m.evalDirect(client, h)
	} else {
		m.evalIncremental(client, h)
	}
	if !m.fused {
		h.Scale(c.shadowScale)
	}

	// Commit the epoch key and the post-shadow matrix for the next call.
	c.client = client
	for pi, p := range m.paths {
		c.vias[pi] = p.via
		c.gains[pi] = p.gain
	}
	copy(c.resp.Data(), h.Data())
	c.epochValid = true
}

// sameGeometry reports whether the paths match the committed epoch key.
func (c *respCache) sameGeometry(paths []path) bool {
	for pi, p := range paths {
		if p.via != c.vias[pi] || p.gain != c.gains[pi] {
			return false
		}
	}
	return true
}

// Measure returns a noisy PHY observation at time t with a freshly
// allocated CSI matrix. Hot paths should prefer MeasureInto with a reused
// buffer.
func (m *Model) Measure(t float64) Sample {
	return m.MeasureInto(t, nil)
}

// MeasureInto is Measure writing the CSI estimate into the caller-owned
// buffer h (nil allocates; see ResponseInto for the reuse contract). The
// returned Sample's CSI field is h, so it remains valid only until the
// caller reuses the buffer.
//
//mobilint:hotpath
func (m *Model) MeasureInto(t float64, h *csi.Matrix) Sample {
	h = m.ResponseInto(t, h)
	// Estimation noise relative to the channel's RMS amplitude. The noise
	// entries are drawn in storage order (sc, tx, rx), which linear
	// iteration over the backing array preserves.
	rms := math.Sqrt(h.AvgPower())
	sigma := rms * m.csiNoiseScale / math.Sqrt2
	data := h.Data()
	for i := range data {
		data[i] += complex(m.noise.Gaussian(0, sigma), m.noise.Gaussian(0, sigma))
	}
	rssi := m.rssiFrom(h)
	return Sample{
		Time:     t,
		CSI:      h,
		RSSIdBm:  rssi,
		SNRdB:    rssi - m.cfg.NoiseFloorDBm,
		Distance: m.Distance(t),
	}
}

// rssiFrom converts a channel estimate to a reported RSSI value, with
// measurement noise and hardware quantization.
func (m *Model) rssiFrom(h *csi.Matrix) float64 {
	p := h.AvgPower()
	if p <= 0 {
		return -120
	}
	rssi := m.cfg.TxPowerDBm + 10*math.Log10(p) + m.noise.Gaussian(0, m.cfg.RSSINoiseDB)
	if q := m.cfg.RSSIQuantDB; q > 0 {
		rssi = math.Round(rssi/q) * q
	}
	return rssi
}

// MeanRSSI returns the expected (noise-free, unquantized) RSSI at time t —
// the quantity roaming policies estimate by averaging reports.
func (m *Model) MeanRSSI(t float64) float64 {
	m.rssiScratch = m.ResponseInto(t, m.rssiScratch)
	p := m.rssiScratch.AvgPower()
	if p <= 0 {
		return -120
	}
	return m.cfg.TxPowerDBm + 10*math.Log10(p)
}

// SNRdB returns the expected wideband SNR at time t.
func (m *Model) SNRdB(t float64) float64 {
	return m.MeanRSSI(t) - m.cfg.NoiseFloorDBm
}

// shadowField is a smooth pseudo-random spatial field used for log-normal
// shadowing: a sum of planar sinusoids with random orientations and a
// spatial period near the decorrelation length. Being a deterministic
// function of position, a static client sees constant shadowing while a
// walking client sees it vary — as in real buildings.
type shadowField struct {
	sigma float64
	comps []shadowComponent
}

type shadowComponent struct {
	kx, ky, phase, weight float64
}

func newShadowField(sigmaDB, corrLen float64, rng *stats.RNG) *shadowField {
	f := &shadowField{sigma: sigmaDB}
	if sigmaDB <= 0 {
		return f
	}
	const n = 6
	var sumW2 float64
	for i := 0; i < n; i++ {
		ang := rng.Range(0, 2*math.Pi)
		wavelen := corrLen * rng.Range(0.7, 1.8)
		k := 2 * math.Pi / wavelen
		c := shadowComponent{
			kx:     k * math.Cos(ang),
			ky:     k * math.Sin(ang),
			phase:  rng.Range(0, 2*math.Pi),
			weight: rng.Range(0.5, 1),
		}
		sumW2 += c.weight * c.weight / 2 // sine variance = w^2/2
		f.comps = append(f.comps, c)
	}
	norm := sigmaDB / math.Sqrt(sumW2)
	for i := range f.comps {
		f.comps[i].weight *= norm
	}
	return f
}

// at returns the shadowing value in dB at position p.
func (f *shadowField) at(p geom.Point) float64 {
	if f.sigma <= 0 {
		return 0
	}
	var s float64
	for _, c := range f.comps {
		s += c.weight * math.Sin(c.kx*p.X+c.ky*p.Y+c.phase)
	}
	return s
}
