// Package channel implements the geometric multipath wireless channel
// simulator that substitutes for the paper's testbed radio environment.
//
// The model is ray-based: the signal between each AP antenna and each
// client antenna propagates along a line-of-sight path plus one
// single-bounce path per scatterer. Each path contributes a complex gain
// with free-space amplitude decay and a phase proportional to its length in
// carrier wavelengths, evaluated per OFDM subcarrier. This reproduces the
// mechanisms the paper's classifier depends on:
//
//   - When nothing moves, the channel frequency response is constant up to
//     estimation noise, so consecutive CSI snapshots are nearly identical.
//   - When a person walks nearby (environmental mobility), only the paths
//     bounced off that person change, so the CSI profile changes partially.
//   - When the device itself moves even a few centimeters (one wavelength
//     at 5.8 GHz is 5.2 cm), every path length changes and the CSI profile
//     decorrelates completely — regardless of whether the motion is micro
//     or macro, which is why CSI alone cannot separate those two.
//
// RSSI, SNR, distance (for ToF) and position-dependent log-normal
// shadowing are derived from the same geometry.
package channel

import (
	"math"
	"math/cmplx"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
)

// SpeedOfLight in meters per second.
const SpeedOfLight = 299792458.0

// Config holds the radio parameters of a link.
type Config struct {
	// CarrierHz is the center frequency. The paper tunes to 5.825 GHz.
	CarrierHz float64
	// BandwidthHz is the channel width (40 MHz in the paper).
	BandwidthHz float64
	// Subcarriers is the number of reported CSI subcarriers (52 on the
	// AR9390, matching the paper).
	Subcarriers int
	// NTx and NRx are the AP and client antenna counts (3x2 in the paper).
	NTx, NRx int
	// TxPowerDBm is the transmit power.
	TxPowerDBm float64
	// NoiseFloorDBm is the receiver noise floor over the full bandwidth.
	NoiseFloorDBm float64
	// CSINoiseSNRdB is the effective SNR of CSI estimation; per-subcarrier
	// estimation noise is scaled so that a static channel's similarity
	// saturates just below 1, as observed on real chipsets.
	CSINoiseSNRdB float64
	// ShadowSigmaDB is the standard deviation of position-dependent
	// log-normal shadowing.
	ShadowSigmaDB float64
	// ShadowCorrLen is the spatial decorrelation length of shadowing in
	// meters.
	ShadowCorrLen float64
	// RSSIQuantDB quantizes reported RSSI (1 dB on commodity hardware).
	RSSIQuantDB float64
	// RSSINoiseDB is the per-report RSSI measurement noise stddev.
	RSSINoiseDB float64
	// PathLossExponent is the indoor distance-power law: beyond
	// PathLossBreakM, path amplitudes decay as d^(-n/2) instead of the
	// free-space d^(-1) (walls, furniture, people absorb energy).
	PathLossExponent float64
	// PathLossBreakM is the breakpoint distance in meters.
	PathLossBreakM float64
	// LoSGain scales the line-of-sight path amplitude: 1 is a clear
	// line of sight; lower values model clutter/blockage (cubicle walls,
	// people) that makes the channel multipath-dominated — Rician with a
	// small K factor. 0 removes the LoS entirely (pure NLOS).
	LoSGain float64
}

// DefaultConfig mirrors the paper's testbed: HP MSM 460 (3 antennas,
// AR9390) at 5.825 GHz / 40 MHz talking to a 2-antenna Galaxy S5.
func DefaultConfig() Config {
	return Config{
		CarrierHz:     5.825e9,
		BandwidthHz:   40e6,
		Subcarriers:   52,
		NTx:           3,
		NRx:           2,
		TxPowerDBm:    18,
		NoiseFloorDBm: -92, // kTB + NF over 40 MHz
		CSINoiseSNRdB: 31,
		ShadowSigmaDB: 3,
		ShadowCorrLen: 8,
		RSSIQuantDB:   1,
		RSSINoiseDB:   0.7,

		PathLossExponent: 3.5,
		PathLossBreakM:   5,
		LoSGain:          1,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (c Config) Wavelength() float64 { return SpeedOfLight / c.CarrierHz }

// Sample is one PHY-layer observation of the link, as an AP would collect
// from a client transmission (data or ACK).
type Sample struct {
	// Time is the observation time in seconds.
	Time float64
	// CSI is the noisy channel estimate.
	CSI *csi.Matrix
	// RSSIdBm is the reported received signal strength.
	RSSIdBm float64
	// SNRdB is the wideband signal-to-noise ratio implied by the RSSI.
	SNRdB float64
	// Distance is the true AP-client distance in meters (consumed by the
	// ToF model, never exposed to protocols directly).
	Distance float64
}

// Model is the channel between one AP and one client for a given scenario.
// It is deterministic: the same scenario, config and seed produce the same
// sample stream.
type Model struct {
	cfg    Config
	ap     geom.Point
	scen   *mobility.Scenario
	noise  *stats.RNG
	shadow *shadowField

	apAnts     []geom.Vector // antenna offsets from the AP position
	clientAnts []geom.Vector // antenna offsets from the client position
	subFreqs   []float64     // absolute subcarrier frequencies
}

// New builds a channel model between the scenario's AP and client.
func New(cfg Config, scen *mobility.Scenario, rng *stats.RNG) *Model {
	return NewAt(cfg, scen.AP, scen, rng)
}

// NewAt builds a channel model between an arbitrary AP position and the
// scenario's client — used by the roaming simulator, where several APs
// observe the same walking client.
func NewAt(cfg Config, ap geom.Point, scen *mobility.Scenario, rng *stats.RNG) *Model {
	m := &Model{
		cfg:    cfg,
		ap:     ap,
		scen:   scen,
		noise:  rng.Split(0x6e6f6973), // "nois"
		shadow: newShadowField(cfg.ShadowSigmaDB, cfg.ShadowCorrLen, rng.Split(0x73686164)),
	}
	lambda := cfg.Wavelength()
	// Uniform linear arrays spaced half a wavelength along x (AP) and y
	// (client) so antenna pairs see distinct geometry.
	for i := 0; i < cfg.NTx; i++ {
		m.apAnts = append(m.apAnts, geom.Vec(float64(i)*lambda/2, 0))
	}
	for i := 0; i < cfg.NRx; i++ {
		m.clientAnts = append(m.clientAnts, geom.Vec(0, float64(i)*lambda/2))
	}
	m.subFreqs = make([]float64, cfg.Subcarriers)
	for i := range m.subFreqs {
		frac := (float64(i) - float64(cfg.Subcarriers-1)/2) / float64(cfg.Subcarriers)
		m.subFreqs[i] = cfg.CarrierHz + frac*cfg.BandwidthHz
	}
	return m
}

// Config returns the model's radio configuration.
func (m *Model) Config() Config { return m.cfg }

// AP returns the AP position this model observes from.
func (m *Model) AP() geom.Point { return m.ap }

// Distance returns the true AP-client distance at time t.
func (m *Model) Distance(t float64) float64 {
	return m.scen.Client.At(t).Dist(m.ap)
}

// Response computes the true (noise-free) CSI matrix at time t.
func (m *Model) Response(t float64) *csi.Matrix {
	client := m.scen.Client.At(t)
	h := csi.NewMatrix(m.cfg.Subcarriers, m.cfg.NTx, m.cfg.NRx)
	lambdaScale := m.cfg.Wavelength() / (4 * math.Pi)

	// Gather path endpoints once: LoS plus one bounce per scatterer.
	type path struct {
		gain   float64 // amplitude
		via    geom.Point
		bounce bool
	}
	losGain := m.cfg.LoSGain
	if losGain == 0 && m.cfg.PathLossExponent == 0 {
		// Zero-value Config: keep the zero-config behaviour sane.
		losGain = 1
	}
	paths := make([]path, 0, 1+len(m.scen.Scatterers))
	paths = append(paths, path{gain: losGain})
	scatterPos := make([]geom.Point, len(m.scen.Scatterers))
	for i, sc := range m.scen.Scatterers {
		scatterPos[i] = sc.Traj.At(t)
		paths = append(paths, path{gain: sc.Reflectivity, via: scatterPos[i], bounce: true})
	}

	f0 := m.subFreqs[0]
	df := 0.0
	if len(m.subFreqs) > 1 {
		df = m.subFreqs[1] - m.subFreqs[0]
	}

	for txi, txOff := range m.apAnts {
		txPos := m.ap.Add(txOff)
		for rxi, rxOff := range m.clientAnts {
			rxPos := client.Add(rxOff)
			for _, p := range paths {
				var length float64
				if p.bounce {
					length = txPos.Dist(p.via) + p.via.Dist(rxPos)
				} else {
					length = txPos.Dist(rxPos)
				}
				if length < 0.1 {
					length = 0.1
				}
				amp := p.gain * lambdaScale / length
				// Indoor excess path loss beyond the breakpoint.
				if bp := m.cfg.PathLossBreakM; bp > 0 && length > bp && m.cfg.PathLossExponent > 2 {
					amp *= math.Pow(bp/length, (m.cfg.PathLossExponent-2)/2)
				}
				// Phase at the first subcarrier, then rotate by a constant
				// per-subcarrier increment (avoids a sincos per subcarrier).
				base := cmplx.Rect(amp, -2*math.Pi*f0*length/SpeedOfLight)
				rot := cmplx.Rect(1, -2*math.Pi*df*length/SpeedOfLight)
				contrib := base
				for sc := 0; sc < m.cfg.Subcarriers; sc++ {
					h.Set(sc, txi, rxi, h.At(sc, txi, rxi)+contrib)
					contrib *= rot
				}
			}
		}
	}

	// Apply position-dependent shadowing as a real wideband gain factor.
	shadowDB := m.shadow.at(client)
	h.Scale(math.Pow(10, shadowDB/20))
	return h
}

// Measure returns a noisy PHY observation at time t: the CSI estimate with
// per-subcarrier complex estimation noise, plus quantized noisy RSSI.
func (m *Model) Measure(t float64) Sample {
	h := m.Response(t)
	// Estimation noise relative to the channel's RMS amplitude.
	rms := math.Sqrt(h.AvgPower())
	sigma := rms * math.Pow(10, -m.cfg.CSINoiseSNRdB/20) / math.Sqrt2
	for sc := 0; sc < h.Subcarriers; sc++ {
		for tx := 0; tx < h.NTx; tx++ {
			for rx := 0; rx < h.NRx; rx++ {
				n := complex(m.noise.Gaussian(0, sigma), m.noise.Gaussian(0, sigma))
				h.Set(sc, tx, rx, h.At(sc, tx, rx)+n)
			}
		}
	}
	rssi := m.rssiFrom(h)
	return Sample{
		Time:     t,
		CSI:      h,
		RSSIdBm:  rssi,
		SNRdB:    rssi - m.cfg.NoiseFloorDBm,
		Distance: m.Distance(t),
	}
}

// rssiFrom converts a channel estimate to a reported RSSI value, with
// measurement noise and hardware quantization.
func (m *Model) rssiFrom(h *csi.Matrix) float64 {
	p := h.AvgPower()
	if p <= 0 {
		return -120
	}
	rssi := m.cfg.TxPowerDBm + 10*math.Log10(p) + m.noise.Gaussian(0, m.cfg.RSSINoiseDB)
	if q := m.cfg.RSSIQuantDB; q > 0 {
		rssi = math.Round(rssi/q) * q
	}
	return rssi
}

// MeanRSSI returns the expected (noise-free, unquantized) RSSI at time t —
// the quantity roaming policies estimate by averaging reports.
func (m *Model) MeanRSSI(t float64) float64 {
	h := m.Response(t)
	p := h.AvgPower()
	if p <= 0 {
		return -120
	}
	return m.cfg.TxPowerDBm + 10*math.Log10(p)
}

// SNRdB returns the expected wideband SNR at time t.
func (m *Model) SNRdB(t float64) float64 {
	return m.MeanRSSI(t) - m.cfg.NoiseFloorDBm
}

// shadowField is a smooth pseudo-random spatial field used for log-normal
// shadowing: a sum of planar sinusoids with random orientations and a
// spatial period near the decorrelation length. Being a deterministic
// function of position, a static client sees constant shadowing while a
// walking client sees it vary — as in real buildings.
type shadowField struct {
	sigma float64
	comps []shadowComponent
}

type shadowComponent struct {
	kx, ky, phase, weight float64
}

func newShadowField(sigmaDB, corrLen float64, rng *stats.RNG) *shadowField {
	f := &shadowField{sigma: sigmaDB}
	if sigmaDB <= 0 {
		return f
	}
	const n = 6
	var sumW2 float64
	for i := 0; i < n; i++ {
		ang := rng.Range(0, 2*math.Pi)
		wavelen := corrLen * rng.Range(0.7, 1.8)
		k := 2 * math.Pi / wavelen
		c := shadowComponent{
			kx:     k * math.Cos(ang),
			ky:     k * math.Sin(ang),
			phase:  rng.Range(0, 2*math.Pi),
			weight: rng.Range(0.5, 1),
		}
		sumW2 += c.weight * c.weight / 2 // sine variance = w^2/2
		f.comps = append(f.comps, c)
	}
	norm := sigmaDB / math.Sqrt(sumW2)
	for i := range f.comps {
		f.comps[i].weight *= norm
	}
	return f
}

// at returns the shadowing value in dB at position p.
func (f *shadowField) at(p geom.Point) float64 {
	if f.sigma <= 0 {
		return 0
	}
	var s float64
	for _, c := range f.comps {
		s += c.weight * math.Sin(c.kx*p.X+c.ky*p.Y+c.phase)
	}
	return s
}
