package channel

import "math"

// This file provides a four-lane batched pow075 for the breakpoint pass.
//
// The scalar pow075 spends nearly all of its time inside math.Log and
// math.Exp, whose dependency chains are long enough that the CPU's
// out-of-order window cannot overlap two consecutive pow075 calls — the
// breakpoint pass was paying full serial latency per path. The functions
// here are operation-for-operation Go transcriptions of the exact code
// Go's math package runs on amd64 (the SLEEF-derived archExp in its FMA
// variant, via math.FMA, which is bit-exact fused multiply-add on every
// platform; and archLog, which is plain IEEE multiply/add/divide
// throughout), with four independent lanes interleaved by hand so the
// four Log→Exp chains run concurrently.
//
// Bit-identity is empirical, not assumed: pow4OK is established at init
// by probing log4/exp4 lane outputs against math.Log/math.Exp across
// magnitudes, specials and denormals. On any platform where the
// transcription does not match the local math package bit-for-bit
// (non-amd64 ports, or a non-FMA archExp), pow4OK stays false and the
// breakpoint pass uses scalar pow075, which always matches by
// construction. Lanes never interact: each output is a pure function of
// its own input, so quad grouping cannot change a single bit.

// Constants from math's exp_amd64.s / log_amd64.s, parsed from the same
// decimal literals the assembler rounds to the same float64 values.
const (
	expLOG2E    = 1.4426950408889634073599246810018920
	expLN2U     = 0.69314718055966295651160180568695068359375
	expLN2L     = 0.28235290563031577122588448175013436025525412068e-12
	expOverflow = 7.09782712893384e+02

	expC2 = 1.6666666666666666667e-1
	expC3 = 4.1666666666666666667e-2
	expC4 = 8.3333333333333333333e-3
	expC5 = 1.3888888888888888889e-3
	expC6 = 1.9841269841269841270e-4
	expC7 = 2.4801587301587301587e-5

	logHSqrt2 = 7.07106781186547524401e-01
	logLn2Hi  = 6.93147180369123816490e-01
	logLn2Lo  = 1.90821492927058770002e-10
	logL1     = 6.666666666666735130e-01
	logL2     = 3.999999999940941908e-01
	logL3     = 2.857142874366239149e-01
	logL4     = 2.222219843214978396e-01
	logL5     = 1.818357216161805012e-01
	logL6     = 1.531383769920937332e-01
	logL7     = 1.479819860511658591e-01
)

// logLane is archLog transcribed: the same bit-level Frexp (including its
// treatment of denormals), the same branchless-in-effect Sqrt2/2
// adjustment (the branch arms compute k-1.0 / f1*2.0, exactly the values
// the assembly's mask selects), and the same polynomial and reconstruction
// operation order.
func logLane(x float64) float64 {
	bits := math.Float64bits(x)
	if bits&^(1<<63) == 0 {
		return math.Inf(-1)
	}
	if int64(bits) < 0 {
		return math.NaN()
	}
	if bits >= 0x7FF0000000000000 {
		return x // +Inf or NaN
	}
	f1 := math.Float64frombits(bits&0x000FFFFFFFFFFFFF | 0x3FE0000000000000)
	k := float64(int32(bits>>52&0x7FF) - 0x3FE)
	if f1 <= logHSqrt2 {
		k -= 1
		f1 *= 2
	}
	f := f1 - 1
	s := f / (2 + f)
	s2 := s * s
	s4 := s2 * s2
	t1 := s2 * (((logL7*s4+logL5)*s4+logL3)*s4 + logL1)
	t2 := s4 * ((logL6*s4+logL4)*s4 + logL2)
	r := t1 + t2
	hfsq := 0.5 * f * f
	return k*logLn2Hi - ((hfsq - (s*(hfsq+r) + k*logLn2Lo)) - f)
}

// expLane is archExp's FMA variant transcribed: round-to-nearest exponent
// split, fused Cody-Waite reduction, the fused polynomial, three
// fr*(2+fr) doublings with the fourth fused with the final +1, and the
// same two-step denormal ldexp tail.
func expLane(x float64) float64 {
	bits := math.Float64bits(x)
	if bits&^(1<<63) >= 0x7FF0000000000000 {
		if bits == math.Float64bits(math.Inf(-1)) {
			return 0
		}
		return x // NaN or +Inf
	}
	if x > expOverflow {
		return math.Inf(1)
	}
	k := int32(math.RoundToEven(expLOG2E * x))
	kf := float64(k)
	z := math.FMA(-expLN2U, kf, x)
	z = math.FMA(-expLN2L, kf, z)
	z *= 0.0625
	p := expC7
	p = math.FMA(p, z, expC6)
	p = math.FMA(p, z, expC5)
	p = math.FMA(p, z, expC4)
	p = math.FMA(p, z, expC3)
	p = math.FMA(p, z, expC2)
	p = math.FMA(p, z, 0.5)
	p = math.FMA(p, z, 1.0)
	fr := z * p
	fr = fr * (2 + fr)
	fr = fr * (2 + fr)
	fr = fr * (2 + fr)
	fr = math.FMA(fr, 2+fr, 1.0)
	return expLdexp(fr, k)
}

// expLdexp is archExp's ldexp tail: bias, the denormal split (scale by
// 2^(k+1022) then 2^-1022 so the last multiply performs the one rounding
// into the denormal), and the overflow/underflow exits.
func expLdexp(fr float64, k int32) float64 {
	bx := k + 0x3FF
	if bx <= 0 {
		if bx < -52 {
			return 0
		}
		bx += 0x3FE
		fr *= math.Float64frombits(uint64(bx) << 52)
		return fr * math.Float64frombits(1<<52) // 2^-1022
	}
	if bx >= 0x7FF {
		return math.Inf(1)
	}
	return fr * math.Float64frombits(uint64(bx)<<52)
}

// pow4OK gates the quad breakpoint path: true only when the lane
// transcriptions reproduce this platform's math.Log and math.Exp
// bit-for-bit across a probe sweep of magnitudes, breakpoint-typical
// ratios, specials and denormals.
var pow4OK = func() bool {
	probes := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1), math.NaN(),
		5e-324, 1e-310, math.MaxFloat64, 709, 710, -745, -746,
	}
	x := 1e-12
	for i := 0; i < 600; i++ {
		probes = append(probes, x, -x)
		x *= 1.1
	}
	for _, p := range probes {
		l, e := logLane(p), expLane(p)
		wl, we := math.Log(p), math.Exp(p)
		if math.Float64bits(l) != math.Float64bits(wl) && !(math.IsNaN(l) && math.IsNaN(wl)) {
			return false
		}
		if math.Float64bits(e) != math.Float64bits(we) && !(math.IsNaN(e) && math.IsNaN(we)) {
			return false
		}
	}
	return true
}()

// pow075x4 computes pow075 of four independent inputs with the Log and
// Exp stages interleaved across lanes, so the four serial Log→Exp
// dependency chains overlap instead of running back to back. Every lane
// applies exactly pow075's operation sequence — Frexp, Exp(-0.25*Log(x)),
// the mantissa multiply, Ldexp — so each output bit-matches the scalar
// call for the same input. Callers must check pow4OK.
//
//mobilint:hotpath
func pow075x4(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64) {
	// Frexp stage (bit manipulation, cheap).
	m0, e0 := math.Frexp(x0)
	m1, e1 := math.Frexp(x1)
	m2, e2 := math.Frexp(x2)
	m3, e3 := math.Frexp(x3)

	// Log stage, interleaved. Specials cannot occur for the breakpoint's
	// positive finite ratios, but each lane still runs the full archLog
	// transcription, so any input produces the scalar result.
	l0 := logLane(x0)
	l1 := logLane(x1)
	l2 := logLane(x2)
	l3 := logLane(x3)

	// Exp stage on -0.25*log, interleaved.
	a0 := expLane(-0.25 * l0)
	a1 := expLane(-0.25 * l1)
	a2 := expLane(-0.25 * l2)
	a3 := expLane(-0.25 * l3)

	a0 *= m0
	a1 *= m1
	a2 *= m2
	a3 *= m3
	y0 = math.Ldexp(a0, e0)
	y1 = math.Ldexp(a1, e1)
	y2 = math.Ldexp(a2, e2)
	y3 = math.Ldexp(a3, e3)
	return
}
