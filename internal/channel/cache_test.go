package channel

import (
	"testing"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
)

// cachedAndUncached builds two models of the same scenario and seeds that
// differ only in Config.DisableCache, so every divergence between them is
// the cache's fault.
func cachedAndUncached(cfg Config, build func(rng *stats.RNG) *mobility.Scenario, seed uint64) (cached, uncached *Model) {
	cfgOff := cfg
	cfgOff.DisableCache = true
	cached = New(cfg, build(stats.NewRNG(seed)), stats.NewRNG(seed+1000))
	uncached = New(cfgOff, build(stats.NewRNG(seed)), stats.NewRNG(seed+1000))
	return cached, uncached
}

func requireSameBits(t *testing.T, label string, tt float64, a, b *csi.Matrix) {
	t.Helper()
	ad, bd := a.Data(), b.Data()
	for k := range ad {
		if ad[k] != bd[k] {
			t.Fatalf("%s t=%v entry %d: cached %v vs uncached %v", label, tt, k, ad[k], bd[k])
		}
	}
}

// TestCacheBitIdenticalAcrossModes is the headline equivalence test: for
// every mobility mode, a cached model reproduces an uncached model
// bit-for-bit over a time series that mixes repeated and advancing
// timestamps (repeats exercise the epoch fast path; advances exercise the
// per-path incremental one). Measurements are compared too — noisy CSI,
// RSSI and SNR all consume the noise RNG, so any cache-induced change to
// draw order would diverge here.
func TestCacheBitIdenticalAcrossModes(t *testing.T) {
	times := []float64{0, 0, 0.05, 0.05, 0.05, 0.1, 0.1, 0.73, 0.73, 0.75}
	for _, mode := range mobility.AllModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			build := func(rng *stats.RNG) *mobility.Scenario {
				return mobility.NewScenario(mode, mobility.DefaultSceneConfig(), rng)
			}
			mc, mu := cachedAndUncached(DefaultConfig(), build, 17+uint64(mode))
			var hc, hu *csi.Matrix
			for _, tt := range times {
				hc = mc.ResponseInto(tt, hc)
				hu = mu.ResponseInto(tt, hu)
				requireSameBits(t, "response", tt, hc, hu)
			}
			var bc, bu *csi.Matrix
			for _, tt := range times {
				sc := mc.MeasureInto(tt, bc)
				su := mu.MeasureInto(tt, bu)
				bc, bu = sc.CSI, su.CSI
				requireSameBits(t, "measure", tt, sc.CSI, su.CSI)
				if sc.RSSIdBm != su.RSSIdBm || sc.SNRdB != su.SNRdB {
					t.Fatalf("t=%v: cached sample (rssi=%v snr=%v) vs uncached (rssi=%v snr=%v) — noise draw order changed",
						tt, sc.RSSIdBm, sc.SNRdB, su.RSSIdBm, su.SNRdB)
				}
			}
		})
	}
}

// TestCacheInvalidation drives the cache through each way its key can go
// stale and checks bit-identity against the uncached reference at every
// step: client motion (every path length changes), scatterer motion (one
// path per mover changes), shadow-field variation along a long walk, the
// length < 0.1 clamp (client parked on top of the AP), and both sides of
// the breakpoint path-loss branch.
func TestCacheInvalidation(t *testing.T) {
	scfg := mobility.DefaultSceneConfig()
	cases := []struct {
		name  string
		cfg   Config
		build func(rng *stats.RNG) *mobility.Scenario
		times []float64
	}{
		{
			name: "client-motion",
			cfg:  DefaultConfig(),
			build: func(rng *stats.RNG) *mobility.Scenario {
				return mobility.NewScenario(mobility.Macro, scfg, rng)
			},
			times: []float64{0, 0.02, 0.02, 1, 2, 2, 5},
		},
		{
			name: "scatterer-motion",
			cfg:  DefaultConfig(),
			build: func(rng *stats.RNG) *mobility.Scenario {
				return mobility.NewScenario(mobility.Environmental, scfg, rng)
			},
			times: []float64{0, 0.05, 0.05, 0.1, 3, 3, 3.05},
		},
		{
			name: "shadow-boundary",
			cfg:  DefaultConfig(),
			build: func(rng *stats.RNG) *mobility.Scenario {
				// A straight 40 m walk crosses several shadow-field
				// decorrelation lengths (8 m), so the wideband shadow gain
				// sweeps through distinct values.
				return mobility.NewMacroScenario(mobility.HeadingAway, scfg, rng)
			},
			times: []float64{0, 0, 2, 4, 8, 8, 16, 24},
		},
		{
			name: "length-clamp",
			cfg:  DefaultConfig(),
			build: func(rng *stats.RNG) *mobility.Scenario {
				// Client walks straight through the AP position: LoS length
				// passes below the 0.1 m clamp and out the other side.
				s := mobility.NewScenario(mobility.Static, scfg, rng)
				from := scfg.AP.Add(geom.Vec(-1, 0))
				to := scfg.AP.Add(geom.Vec(1, 0))
				s.Client = mobility.WaypointWalk{Path: geom.NewPath(from, to), Speed: 1}
				return s
			},
			times: []float64{0, 0.9, 1.0, 1.0, 1.001, 1.1, 2},
		},
		{
			name: "breakpoint-straddle",
			cfg:  DefaultConfig(), // PathLossBreakM 5, exponent 3.5 > 2
			build: func(rng *stats.RNG) *mobility.Scenario {
				// Walk from 2 m to 20 m from the AP: path lengths cross the
				// 5 m breakpoint, so both amp branches run within one trial.
				s := mobility.NewScenario(mobility.Static, scfg, rng)
				from := scfg.AP.Add(geom.Vec(2, 0))
				to := scfg.AP.Add(geom.Vec(20, 0))
				s.Client = mobility.WaypointWalk{Path: geom.NewPath(from, to), Speed: 2}
				return s
			},
			times: []float64{0, 0, 0.5, 1.5, 1.5, 4, 9, 9},
		},
		{
			name: "breakpoint-disabled",
			cfg: func() Config {
				c := DefaultConfig()
				c.PathLossExponent = 2 // branch requires > 2: always off
				return c
			}(),
			build: func(rng *stats.RNG) *mobility.Scenario {
				return mobility.NewScenario(mobility.Macro, scfg, rng)
			},
			times: []float64{0, 0.5, 0.5, 3, 6},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mc, mu := cachedAndUncached(tc.cfg, tc.build, 41)
			var hc, hu *csi.Matrix
			for _, tt := range tc.times {
				hc = mc.ResponseInto(tt, hc)
				hu = mu.ResponseInto(tt, hu)
				requireSameBits(t, tc.name, tt, hc, hu)
			}
		})
	}
}

// TestCacheScattererAppearance mutates the scatterer set between calls —
// a path appears, then disappears — and checks the cached model resizes
// and re-keys instead of summing stale series.
func TestCacheScattererAppearance(t *testing.T) {
	build := func(rng *stats.RNG) *mobility.Scenario {
		return mobility.NewScenario(mobility.Static, mobility.DefaultSceneConfig(), rng)
	}
	mc, mu := cachedAndUncached(DefaultConfig(), build, 59)
	extra := mobility.ScattererTrack{Traj: mobility.Fixed(geom.Pt(12, 9)), Reflectivity: 0.6}

	var hc, hu *csi.Matrix
	step := func(tt float64) {
		t.Helper()
		hc = mc.ResponseInto(tt, hc)
		hu = mu.ResponseInto(tt, hu)
		requireSameBits(t, "appearance", tt, hc, hu)
	}

	step(0)
	step(0) // warm epoch hit with the original path set

	for _, m := range []*Model{mc, mu} {
		m.scen.Scatterers = append(m.scen.Scatterers, extra)
	}
	step(0)
	step(0)

	for _, m := range []*Model{mc, mu} {
		m.scen.Scatterers = m.scen.Scatterers[:len(m.scen.Scatterers)-1]
	}
	step(0)
	step(0.5)
}

// TestCacheStatsCounters pins the cache's observable behaviour: a static
// scenario collapses to one evaluation per epoch, an environmental one
// recomputes only the moving paths, and a disabled cache reports nothing.
func TestCacheStatsCounters(t *testing.T) {
	t.Run("static-epoch-hits", func(t *testing.T) {
		m := model(mobility.Static, 7)
		var h *csi.Matrix
		for i := 0; i < 5; i++ {
			h = m.ResponseInto(3, h)
		}
		st := m.CacheStats()
		if st.Misses != 1 || st.Hits != 4 {
			t.Fatalf("static repeat: hits=%d misses=%d, want 4/1", st.Hits, st.Misses)
		}
	})
	t.Run("environmental-partial-reuse", func(t *testing.T) {
		m := model(mobility.Environmental, 7)
		h := m.ResponseInto(0, nil)
		warm := m.CacheStats()
		h = m.ResponseInto(0.05, h) // movers advanced; client + statics unchanged
		st := m.CacheStats()
		nPairs := uint64(m.cfg.NTx * m.cfg.NRx)
		nPaths := uint64(1 + len(m.scen.Scatterers))
		evals := st.PathEvals - warm.PathEvals
		if st.PathReuses == 0 {
			t.Fatal("environmental step reused no paths")
		}
		if evals == 0 || evals >= nPairs*nPaths {
			t.Fatalf("environmental step recomputed %d of %d chains, want a strict subset",
				evals, nPairs*nPaths)
		}
	})
	t.Run("disabled-reports-nothing", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.DisableCache = true
		scen := mobility.NewScenario(mobility.Static, mobility.DefaultSceneConfig(), stats.NewRNG(3))
		m := New(cfg, scen, stats.NewRNG(4))
		var h *csi.Matrix
		for i := 0; i < 3; i++ {
			h = m.ResponseInto(0, h)
		}
		if st := m.CacheStats(); st != (CacheStats{}) {
			t.Fatalf("disabled cache has non-zero stats: %+v", st)
		}
	})
}
