package channel

import (
	"math"
	"testing"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
)

func model(mode mobility.Mode, seed uint64) *Model {
	scen := mobility.NewScenario(mode, mobility.DefaultSceneConfig(), stats.NewRNG(seed))
	return New(DefaultConfig(), scen, stats.NewRNG(seed+1000))
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Subcarriers != 52 || cfg.NTx != 3 || cfg.NRx != 2 {
		t.Fatalf("unexpected dims: %d subcarriers, %dx%d", cfg.Subcarriers, cfg.NTx, cfg.NRx)
	}
	lambda := cfg.Wavelength()
	if lambda < 0.05 || lambda > 0.053 {
		t.Fatalf("wavelength at 5.825 GHz = %v m", lambda)
	}
}

func TestResponseDeterministic(t *testing.T) {
	m1 := model(mobility.Static, 1)
	m2 := model(mobility.Static, 1)
	a := m1.Response(3.3)
	b := m2.Response(3.3)
	if rho := csi.TemporalCorrelation(a, b); rho < 1-1e-12 {
		t.Fatalf("same-seed responses differ: rho = %v", rho)
	}
}

func TestResponseShape(t *testing.T) {
	m := model(mobility.Static, 2)
	h := m.Response(0)
	if h.Subcarriers != 52 || h.NTx != 3 || h.NRx != 2 {
		t.Fatalf("bad response shape %dx%dx%d", h.Subcarriers, h.NTx, h.NRx)
	}
	if h.AvgPower() <= 0 {
		t.Fatal("zero channel power")
	}
}

func TestStaticChannelIsConstant(t *testing.T) {
	m := model(mobility.Static, 3)
	a := m.Response(0)
	b := m.Response(10)
	if rho := csi.TemporalCorrelation(a, b); rho < 1-1e-9 {
		t.Fatalf("static channel changed over time: rho = %v", rho)
	}
}

func TestDeviceMotionDecorrelatesChannel(t *testing.T) {
	// On a strong-LoS link the complex correlation retains a LoS floor,
	// but walking should still clearly degrade it relative to static, and
	// more displacement should degrade it more.
	// Sub-wavelength displacement keeps the channel strongly correlated;
	// beyond a wavelength or two it decays to a LoS-dominated floor (the
	// correlation is not monotone there, just clearly depressed).
	m := model(mobility.Macro, 4)
	a := m.Response(0)
	rhoTiny := csi.TemporalCorrelation(a, m.Response(0.005)) // ~7 mm = 0.14 wavelength
	rhoFar := csi.TemporalCorrelation(a, m.Response(1))      // ~1.4 m = 27 wavelengths
	if rhoTiny < 0.9 {
		t.Fatalf("7 mm of motion should barely decorrelate: rho = %v", rhoTiny)
	}
	if rhoFar > 0.9 {
		t.Fatalf("walking 1.4 m left channel highly correlated: rho = %v", rhoFar)
	}
}

func TestMeasureAddsNoise(t *testing.T) {
	m := model(mobility.Static, 5)
	a := m.Measure(0).CSI
	b := m.Measure(0).CSI
	rho := csi.TemporalCorrelation(a, b)
	if rho >= 1-1e-12 {
		t.Fatal("measurements are noise-free")
	}
	if rho < 0.99 {
		t.Fatalf("measurement noise too strong: rho = %v", rho)
	}
}

func TestMeasureFields(t *testing.T) {
	m := model(mobility.Static, 6)
	s := m.Measure(2)
	if s.Time != 2 {
		t.Fatalf("Time = %v", s.Time)
	}
	if s.RSSIdBm > -20 || s.RSSIdBm < -95 {
		t.Fatalf("implausible RSSI %v dBm", s.RSSIdBm)
	}
	if s.SNRdB != s.RSSIdBm-m.cfg.NoiseFloorDBm {
		t.Fatalf("SNR inconsistent with RSSI")
	}
	if s.Distance <= 0 {
		t.Fatalf("Distance = %v", s.Distance)
	}
}

func TestDistanceTracksTrajectory(t *testing.T) {
	cfg := mobility.DefaultSceneConfig()
	scen := mobility.NewMacroScenario(mobility.HeadingAway, cfg, stats.NewRNG(7))
	m := New(DefaultConfig(), scen, stats.NewRNG(8))
	if m.Distance(10) <= m.Distance(0) {
		t.Fatal("distance should grow when walking away")
	}
	want := scen.Client.At(5).Dist(cfg.AP)
	if got := m.Distance(5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Distance = %v, want %v", got, want)
	}
}

func TestRSSIDecreasesWithDistanceOnAverage(t *testing.T) {
	// Build two static scenarios, then compare RSSI at 5 m vs 20 m using
	// a shared scatterer field by measuring the same model along an
	// away-walk at two times.
	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = 30
	var near, far []float64
	for seed := uint64(0); seed < 12; seed++ {
		scen := mobility.NewMacroScenario(mobility.HeadingAway, cfg, stats.NewRNG(seed))
		m := New(DefaultConfig(), scen, stats.NewRNG(seed+99))
		near = append(near, m.MeanRSSI(0)) // ~3 m from AP
		far = append(far, m.MeanRSSI(12))  // ~20 m from AP
	}
	if stats.Mean(near) <= stats.Mean(far)+6 {
		t.Fatalf("RSSI near (%v) should clearly exceed RSSI far (%v)",
			stats.Mean(near), stats.Mean(far))
	}
}

func TestNewAtDifferentAPsSeeDifferentChannels(t *testing.T) {
	scen := mobility.NewScenario(mobility.Static, mobility.DefaultSceneConfig(), stats.NewRNG(9))
	m1 := NewAt(DefaultConfig(), geom.Pt(5, 5), scen, stats.NewRNG(10))
	m2 := NewAt(DefaultConfig(), geom.Pt(45, 25), scen, stats.NewRNG(10))
	if m1.Distance(0) == m2.Distance(0) {
		t.Skip("degenerate geometry")
	}
	if rho := csi.TemporalCorrelation(m1.Response(0), m2.Response(0)); rho > 0.9 {
		t.Fatalf("channels from different APs nearly identical: rho=%v", rho)
	}
}

// --- Calibration tests: the classifier-relevant separations ---

// similarityStream samples the link every tau seconds and returns the
// similarities of consecutive noisy CSI measurements.
func similarityStream(m *Model, tau, duration float64) []float64 {
	var sims []float64
	var prev *csi.Matrix
	for t := 0.0; t < duration; t += tau {
		cur := m.Measure(t).CSI
		if prev != nil {
			sims = append(sims, csi.Similarity(prev, cur))
		}
		prev = cur
	}
	return sims
}

func medianSimilarityForMode(t *testing.T, mode mobility.Mode, tau float64) float64 {
	t.Helper()
	var all []float64
	for seed := uint64(0); seed < 8; seed++ {
		m := model(mode, seed*13+uint64(mode)*101)
		all = append(all, similarityStream(m, tau, 10)...)
	}
	return stats.Median(all)
}

func TestSimilaritySeparatesStaticEnvironmentalDevice(t *testing.T) {
	const tau = 0.05 // the paper's 50 ms sampling period
	staticSim := medianSimilarityForMode(t, mobility.Static, tau)
	envSim := medianSimilarityForMode(t, mobility.Environmental, tau)
	microSim := medianSimilarityForMode(t, mobility.Micro, tau)
	macroSim := medianSimilarityForMode(t, mobility.Macro, tau)

	t.Logf("median similarity @50ms: static=%.4f env=%.4f micro=%.4f macro=%.4f",
		staticSim, envSim, microSim, macroSim)

	if staticSim < 0.98 {
		t.Errorf("static similarity %.4f, want > 0.98 (Thr_sta)", staticSim)
	}
	if envSim >= staticSim {
		t.Errorf("environmental similarity %.4f should be below static %.4f", envSim, staticSim)
	}
	if envSim < 0.70 || envSim > 0.985 {
		t.Errorf("environmental similarity %.4f outside (Thr_env, Thr_sta) band", envSim)
	}
	if microSim > 0.70 {
		t.Errorf("micro similarity %.4f, want < 0.70 (Thr_env)", microSim)
	}
	if macroSim > 0.70 {
		t.Errorf("macro similarity %.4f, want < 0.70 (Thr_env)", macroSim)
	}
}

func TestMicroAndMacroIndistinguishableByCSI(t *testing.T) {
	// Paper Fig. 2(b): the micro and macro similarity distributions
	// overlap heavily. Check the medians are close.
	const tau = 0.05
	microSim := medianSimilarityForMode(t, mobility.Micro, tau)
	macroSim := medianSimilarityForMode(t, mobility.Macro, tau)
	if math.Abs(microSim-macroSim) > 0.35 {
		t.Errorf("micro (%.3f) and macro (%.3f) similarities too far apart — CSI should not separate them", microSim, macroSim)
	}
}

func TestSimilarityDropsWithSamplingPeriod(t *testing.T) {
	// Paper Fig. 2(a): similarity decreases as tau grows for mobile
	// scenarios.
	m := model(mobility.Micro, 77)
	fast := stats.Median(similarityStream(m, 0.01, 8))
	m2 := model(mobility.Micro, 77)
	slow := stats.Median(similarityStream(m2, 0.3, 8))
	if fast <= slow {
		t.Errorf("similarity @10ms (%.3f) should exceed @300ms (%.3f)", fast, slow)
	}
}

func TestShadowFieldProperties(t *testing.T) {
	f := newShadowField(3, 8, stats.NewRNG(11))
	// Deterministic.
	if f.at(geom.Pt(3, 4)) != f.at(geom.Pt(3, 4)) {
		t.Fatal("shadow field not deterministic")
	}
	// Roughly zero-mean with stddev near sigma over many positions.
	rng := stats.NewRNG(12)
	var vals []float64
	for i := 0; i < 4000; i++ {
		vals = append(vals, f.at(geom.Pt(rng.Range(0, 200), rng.Range(0, 200))))
	}
	if m := stats.Mean(vals); math.Abs(m) > 0.5 {
		t.Errorf("shadow mean = %v, want ~0", m)
	}
	if s := stats.StdDev(vals); s < 1.5 || s > 4.5 {
		t.Errorf("shadow stddev = %v, want ~3", s)
	}
	// Smooth: nearby points are similar.
	d := math.Abs(f.at(geom.Pt(10, 10)) - f.at(geom.Pt(10.1, 10)))
	if d > 1 {
		t.Errorf("shadow field too rough: delta over 10cm = %v dB", d)
	}
}

func TestShadowFieldDisabled(t *testing.T) {
	f := newShadowField(0, 8, stats.NewRNG(13))
	if f.at(geom.Pt(1, 2)) != 0 {
		t.Fatal("disabled shadow field should return 0")
	}
}

func TestRSSIQuantization(t *testing.T) {
	m := model(mobility.Static, 14)
	s := m.Measure(0)
	if q := m.cfg.RSSIQuantDB; q > 0 {
		r := s.RSSIdBm / q
		if math.Abs(r-math.Round(r)) > 1e-9 {
			t.Fatalf("RSSI %v not quantized to %v dB", s.RSSIdBm, q)
		}
	}
}

func BenchmarkResponse(b *testing.B) {
	m := model(mobility.Macro, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Response(float64(i%1000) * 0.02)
	}
}

func BenchmarkMeasure(b *testing.B) {
	m := model(mobility.Macro, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Measure(float64(i%1000) * 0.02)
	}
}

// TestZeroValueConfigKeepsLoSPath pins the zero-value-Config behaviour that
// used to be patched up inside every Response call and is now resolved once
// in NewAt: a Config{} with dimensions but no LoSGain and no
// PathLossExponent gets the implicit unit LoS gain, while an explicit
// pure-NLOS setup (LoSGain 0 with a real path-loss exponent) stays dark.
func TestZeroValueConfigKeepsLoSPath(t *testing.T) {
	scfg := mobility.DefaultSceneConfig()
	scfg.StaticScatterers = 0
	scfg.MovingScatterers = 0
	scen := mobility.NewScenario(mobility.Static, scfg, stats.NewRNG(9))
	scen.Scatterers = nil // drop the implicit wall reflectors: LoS only

	zero := Config{Subcarriers: 8, NTx: 2, NRx: 1, CarrierHz: 5.825e9, BandwidthHz: 40e6}
	h := New(zero, scen, stats.NewRNG(10)).Response(0)
	if h.AvgPower() == 0 {
		t.Fatal("zero-value Config should imply a unit-gain LoS path, got an all-zero response")
	}

	nlos := zero
	nlos.PathLossExponent = 3.5
	if h := New(nlos, scen, stats.NewRNG(10)).Response(0); h.AvgPower() != 0 {
		t.Fatalf("explicit pure-NLOS config (no scatterers) should have zero response, got power %v", h.AvgPower())
	}
}

// TestResponseIntoMatchesResponse pins the buffer-reuse contract: passing a
// warm buffer back in reproduces the fresh-allocation result bit-for-bit,
// and a wrong-shaped buffer panics rather than silently reallocating.
func TestResponseIntoMatchesResponse(t *testing.T) {
	m := model(mobility.Macro, 31)
	var buf *csi.Matrix
	for i := 0; i < 5; i++ {
		tt := float64(i) * 0.37
		want := m.Response(tt)
		buf = m.ResponseInto(tt, buf)
		wd, bd := want.Data(), buf.Data()
		for k := range wd {
			if wd[k] != bd[k] {
				t.Fatalf("t=%v entry %d: fresh %v vs reused %v", tt, k, wd[k], bd[k])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResponseInto with a wrong-shaped buffer should panic")
		}
	}()
	m.ResponseInto(0, csi.NewMatrix(1, 1, 1))
}
