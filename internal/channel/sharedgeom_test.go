package channel

import (
	"testing"

	"mobiwlan/internal/csi"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
)

// TestSharedGeometryBitIdentical drives two models of the same scenario
// and seed — one attached to a primed SharedGeometry, one plain — through
// a time series where only some instants are primed. Primed instants must
// take the memoized fast path, unprimed ones the fallback, and every
// response and measurement must match bit-for-bit either way.
func TestSharedGeometryBitIdentical(t *testing.T) {
	for _, mode := range mobility.AllModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			scfg := mobility.DefaultSceneConfig()
			build := func(rng *stats.RNG) *mobility.Scenario {
				return mobility.NewScenario(mode, scfg, rng)
			}
			cfg := DefaultConfig()
			seed := uint64(31 + mode)
			shared := New(cfg, build(stats.NewRNG(seed)), stats.NewRNG(seed+1))
			plain := New(cfg, build(stats.NewRNG(seed)), stats.NewRNG(seed+1))

			g := NewSharedGeometry(cfg, shared.AP(), shared.scen.Scatterers)
			shared.AttachShared(g)

			times := []float64{0, 0.05, 0.05, 0.1, 0.17, 0.7, 0.7, 1.3}
			primed := map[float64]bool{0: true, 0.1: true, 0.7: true}
			var hs, hp *csi.Matrix
			hotSeen := false
			for _, tt := range times {
				if primed[tt] {
					g.Prime(tt)
				}
				hs = shared.ResponseInto(tt, hs)
				hp = plain.ResponseInto(tt, hp)
				if shared.sharedHot != primed[tt] {
					t.Fatalf("t=%v: sharedHot=%v, want %v", tt, shared.sharedHot, primed[tt])
				}
				hotSeen = hotSeen || shared.sharedHot
				requireSameBits(t, "shared-vs-plain", tt, hs, hp)
			}
			if !hotSeen {
				t.Fatal("no instant exercised the shared fast path")
			}
			// Measurements draw noise after the response; identical
			// responses must leave the draw streams in lockstep.
			for _, tt := range []float64{1.4, 1.4, 1.45} {
				g.Prime(tt)
				ss := shared.MeasureInto(tt, hs)
				sp := plain.MeasureInto(tt, hp)
				hs, hp = ss.CSI, sp.CSI
				requireSameBits(t, "measure", tt, ss.CSI, sp.CSI)
				if ss.RSSIdBm != sp.RSSIdBm {
					t.Fatalf("t=%v: RSSI %v vs %v", tt, ss.RSSIdBm, sp.RSSIdBm)
				}
			}
		})
	}
}

// TestAttachSharedValidates pins the mismatch panics: a geometry built
// for a different AP or scatterer set must be rejected at attach time,
// not misindexed at evaluation time.
func TestAttachSharedValidates(t *testing.T) {
	scfg := mobility.DefaultSceneConfig()
	scen := mobility.NewScenario(mobility.Static, scfg, stats.NewRNG(1))
	other := mobility.NewScenario(mobility.Environmental, scfg, stats.NewRNG(2))
	cfg := DefaultConfig()
	m := New(cfg, scen, stats.NewRNG(3))

	mustPanic := func(name string, g *SharedGeometry) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: AttachShared did not panic", name)
			}
		}()
		m.AttachShared(g)
	}
	mustPanic("wrong scatterer count", NewSharedGeometry(cfg, m.AP(), other.Scatterers))
	mustPanic("wrong AP", NewSharedGeometry(cfg, m.AP().Add(geom.Vec(1, 0)), scen.Scatterers))

	m.AttachShared(NewSharedGeometry(cfg, m.AP(), scen.Scatterers))
	m.AttachShared(nil) // detach is legal
}
