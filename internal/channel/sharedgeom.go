package channel

import (
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mobility"
)

// SharedGeometry memoizes, for one AP and one scatterer population, the
// client-independent half of the response geometry at a single instant:
// every scatterer's position and every AP-antenna-to-scatterer leg
// distance. In a shared-scene fleet those values are identical for every
// client of the AP, so the fleet stepper evaluates them once per tick
// (Prime) instead of once per client per tick; each client's Model reads
// them through AttachShared.
//
// Bit-identity: Traj.At(t) is a pure function of (track, t) and
// txPos.Dist(via) a pure function of its operands, so a model consuming
// the memoized values computes exactly the floats it would have computed
// itself — pure-function memoization, the same argument the response
// cache's phasor memo rests on. A model whose evaluation time does not
// match the primed instant (frame-granular MAC calls, unprimed runs)
// silently falls back to computing both itself.
//
// Concurrency: Prime mutates and must be called with no concurrent
// readers (the stepper primes serially at the tick boundary); between
// Prime calls the struct is read-only and any number of Models may read
// it from different goroutines.
type SharedGeometry struct {
	ap     geom.Point
	apAnts []geom.Vector
	scats  []mobility.ScattererTrack

	t      float64
	primed bool
	// vias[si] is scats[si].Traj.At(t); legsTx[txi*len(scats)+si] is the
	// distance from AP antenna txi to vias[si].
	vias   []geom.Point
	legsTx []float64
}

// NewSharedGeometry builds the shared cache for one AP position and the
// scatterer population every attached model's scenario must alias. The
// antenna array is derived from cfg exactly as NewAt derives it, so the
// leg distances match the attached models' own geometry.
func NewSharedGeometry(cfg Config, ap geom.Point, scats []mobility.ScattererTrack) *SharedGeometry {
	g := &SharedGeometry{
		ap:     ap,
		scats:  scats,
		vias:   make([]geom.Point, len(scats)),
		legsTx: make([]float64, cfg.NTx*len(scats)),
	}
	lambda := cfg.Wavelength()
	for i := 0; i < cfg.NTx; i++ {
		g.apAnts = append(g.apAnts, geom.Vec(float64(i)*lambda/2, 0))
	}
	return g
}

// Prime evaluates the scatterer positions and AP-side leg distances at t,
// replacing whatever instant was primed before. Serial use only; see the
// concurrency note on SharedGeometry.
func (g *SharedGeometry) Prime(t float64) {
	nScat := len(g.scats)
	for si := range g.scats {
		g.vias[si] = g.scats[si].Traj.At(t)
	}
	for txi, txOff := range g.apAnts {
		txPos := g.ap.Add(txOff)
		legs := g.legsTx[txi*nScat : (txi+1)*nScat]
		for si := range g.vias {
			legs[si] = txPos.Dist(g.vias[si])
		}
	}
	g.t = t
	g.primed = true
}

// AttachShared points the model at a shared geometry cache. The cache
// must have been built for this model's AP position, antenna count and
// the same scatterer slice as the model's scenario (the path order —
// LoS first, then scatterers in slice order — is what lets the model
// index the cached legs by path). Attach nil to detach.
func (m *Model) AttachShared(g *SharedGeometry) {
	if g != nil {
		if g.ap != m.ap || len(g.apAnts) != len(m.apAnts) || len(g.scats) != len(m.scen.Scatterers) {
			panic("channel: AttachShared geometry does not match this model's AP/antennas/scatterers")
		}
	}
	m.shared = g
	m.sharedHot = false
}
