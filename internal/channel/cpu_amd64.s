#include "textflag.h"

// func cpuHasAVX2() bool
//
// Standard AVX2 detection ladder: max CPUID leaf >= 7, CPUID.1:ECX
// OSXSAVE(27) and AVX(28), XCR0 XMM|YMM state enabled by the OS, and
// CPUID.7.0:EBX AVX2(5).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	MOVL $0, CX
	CPUID
	CMPL AX, $7
	JLT  no

	MOVL $1, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<27 | 1<<28), CX
	CMPL CX, $(1<<27 | 1<<28)
	JNE  no

	MOVL   $0, CX
	XGETBV
	ANDL   $6, AX
	CMPL   AX, $6
	JNE    no

	MOVL  $7, AX
	MOVL  $0, CX
	CPUID
	TESTL $(1<<5), BX
	JZ    no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
