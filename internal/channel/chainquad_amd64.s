#include "textflag.h"

// func chainQuad2(contribs, rots, out, pref *complex128, stride uintptr, n, snap, seed int, scale float64)
//
// Advances n chains for one two-pair column chunk across four consecutive
// subcarriers. Lanes are independent antenna pairs: every YMM operation
// applies the identical scalar IEEE operation to each 64-bit lane, so
// running two pairs side by side cannot change a bit of either.
//
// Layout contract (see sweepFused in kernel.go): contribs/rots hold the
// chunk's chain values path-major, successive paths `stride` bytes apart;
// out and pref rows (one per subcarrier) are likewise `stride` bytes
// apart. All pointers are to the chunk's first pair.
//
// Per path, each complex chain value c advances by c *= r four times with
// the per-subcarrier sums accumulated before each multiply, exactly the
// Go kernel's sequence. The complex multiply reproduces the Go compiler's
// operand order per lane:
//
//	t1 = (c.re*r.re, c.re*r.im)   VMOVDDUP + VMULPD
//	t2 = (c.im*r.im, c.im*r.re)   VPERMILPD dup + VMULPD by swapped r
//	c  = (t1.0 - t2.0, t1.1 + t2.1)   VADDSUBPD
//
// i.e. re = c.re*r.re - c.im*r.im and im = c.re*r.im + c.im*r.re — the
// same two products and the same add/sub, lane for lane.
//
// The two-phase loop implements the prefix snapshot: after `snap` paths
// the four accumulators are stored to pref (when snap > 0), and when
// seed != 0 they start from pref instead of zero. The caller guarantees
// 0 <= snap <= n and n >= 1.
//
// Before the out stores each finished sum is multiplied by
// complex(scale, 0) with the same cmul sequence — precisely the operation
// Matrix.Scale applies per element (re*s - im*0, re*0 + im*s), fused here
// so the shadowing pass stops re-walking the whole matrix. The prefix
// snapshot keeps the unscaled sums, exactly what the separate-pass order
// memoized.
//
// Register plan: Y0-Y3 subcarrier accumulators, Y4 chain value, Y5 r,
// Y6 swapped r, Y7/Y8 multiply temporaries, Y9/Y10 the scale factor as
// (s,0,s,0) and its swap.

#define ADVANCE(S) \
	VADDPD    Y4, S, S;        \
	VMOVDDUP  Y4, Y7;          \
	VPERMILPD $0xF, Y4, Y8;    \
	VMULPD    Y5, Y7, Y7;      \
	VMULPD    Y6, Y8, Y8;      \
	VADDSUBPD Y8, Y7, Y4

#define PATHBODY \
	VMOVUPD   (SI), Y4;        \
	VMOVUPD   (DX), Y5;        \
	VPERMILPD $0x5, Y5, Y6;    \
	ADVANCE(Y0);               \
	ADVANCE(Y1);               \
	ADVANCE(Y2);               \
	ADVANCE(Y3);               \
	VMOVUPD   Y4, (SI);        \
	ADDQ      R9, SI;          \
	ADDQ      R9, DX

#define SCALEMUL(S) \
	VMOVDDUP  S, Y7;           \
	VPERMILPD $0xF, S, Y8;     \
	VMULPD    Y9, Y7, Y7;      \
	VMULPD    Y10, Y8, Y8;     \
	VADDSUBPD Y8, Y7, S

TEXT ·chainQuad2(SB), NOSPLIT, $0-72
	MOVQ contribs+0(FP), SI
	MOVQ rots+8(FP), DX
	MOVQ out+16(FP), DI
	MOVQ pref+24(FP), R8
	MOVQ stride+32(FP), R9
	MOVQ n+40(FP), R10
	MOVQ snap+48(FP), R11
	MOVQ seed+56(FP), R12

	// Y9 = complex(scale, 0) in both 128-bit lanes, Y10 its swap.
	VMOVSD      scale+64(FP), X9
	VINSERTF128 $1, X9, Y9, Y9
	VPERMILPD   $0x5, Y9, Y10

	// Accumulators: zero, or the memoized prefix rows.
	TESTQ R12, R12
	JNZ   seed
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	JMP    seeded

seed:
	MOVQ    R8, AX
	VMOVUPD (AX), Y0
	ADDQ    R9, AX
	VMOVUPD (AX), Y1
	ADDQ    R9, AX
	VMOVUPD (AX), Y2
	ADDQ    R9, AX
	VMOVUPD (AX), Y3

seeded:
	// Phase 1: the snap paths whose sums extend the prefix.
	MOVQ  R11, R13
	TESTQ R13, R13
	JZ    nosnap

loop1:
	PATHBODY
	DECQ R13
	JNZ  loop1

	// Snapshot the extended prefix.
	MOVQ    R8, AX
	VMOVUPD Y0, (AX)
	ADDQ    R9, AX
	VMOVUPD Y1, (AX)
	ADDQ    R9, AX
	VMOVUPD Y2, (AX)
	ADDQ    R9, AX
	VMOVUPD Y3, (AX)

nosnap:
	// Phase 2: the remaining paths.
	MOVQ  R10, R13
	SUBQ  R11, R13
	TESTQ R13, R13
	JZ    done

loop2:
	PATHBODY
	DECQ R13
	JNZ  loop2

done:
	SCALEMUL(Y0)
	SCALEMUL(Y1)
	SCALEMUL(Y2)
	SCALEMUL(Y3)
	VMOVUPD Y0, (DI)
	ADDQ    R9, DI
	VMOVUPD Y1, (DI)
	ADDQ    R9, DI
	VMOVUPD Y2, (DI)
	ADDQ    R9, DI
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET
