package channel

// cpuHasAVX2 reports whether this CPU and OS support AVX2 and YMM state
// (cpu_amd64.s).
func cpuHasAVX2() bool

// chainQuad2 is the AVX2 fused-sweep kernel (chainquad_amd64.s): it
// advances one two-pair column chunk of chains across four subcarriers,
// accumulating the per-subcarrier path-order sums, optionally seeding
// them from and snapshotting them to the prefix memo, and applying the
// shadow factor to the finished sums with Matrix.Scale's exact per-entry
// operation. Callers must hold the layout and 0 <= snap <= n, n >= 1
// contract documented in the assembly, and must only reach it through
// Model.sweepFused so the fusedSweepOK gate applies.
//
//go:noescape
//mobilint:hotpath
func chainQuad2(contribs, rots, out, pref *complex128, stride uintptr, n, snap, seed int, scale float64)

// fusedSweepOK gates the fused all-pairs chain sweep on AVX2.
var fusedSweepOK = cpuHasAVX2()
