// Package sched implements single-AP multi-client downlink scheduling and
// the mobility-aware scheduler the paper sketches as future work (§9:
// "scheduling client traffic at an AP taking movement into account").
//
// The insight mirrors the roaming result: a client walking away from the
// AP has a channel that will only get worse, so its queue should be
// drained NOW; a client walking toward the AP can be deferred cheaply
// because its channel is improving; static clients are time-insensitive.
// The mobility-aware policy weights clients accordingly, on top of a
// rate-proportional opportunistic score.
package sched

import (
	"mobiwlan/internal/aggregation"
	"mobiwlan/internal/core"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/ratecontrol"
	"mobiwlan/internal/stats"
)

// Client is one downlink destination at the AP.
type Client struct {
	// Link is the MAC/PHY to this client.
	Link *mac.Link
	// Adapter is the client's rate-control state.
	Adapter ratecontrol.Adapter
	// StateAt supplies the client's mobility state over time (classifier
	// output or ground truth); nil means always unknown.
	StateAt func(t float64) core.State
}

// View is the scheduler-visible summary of one client.
type View struct {
	// Index identifies the client.
	Index int
	// State is the client's current mobility state.
	State core.State
	// RecentMbps is an EWMA of the client's recent delivered rate.
	RecentMbps float64
	// AirtimeShare is the fraction of airtime this client has consumed.
	AirtimeShare float64
}

// Policy picks the next client to serve.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick returns the index of the client to serve at time t.
	Pick(t float64, views []View) int
}

// RoundRobin cycles through clients.
type RoundRobin struct {
	next int
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(_ float64, views []View) int {
	i := r.next % len(views)
	r.next++
	return i
}

// AirtimeFair serves the client with the smallest airtime share —
// the 802.11 airtime-fairness ideal.
type AirtimeFair struct{}

// Name implements Policy.
func (AirtimeFair) Name() string { return "airtime-fair" }

// Pick implements Policy.
func (AirtimeFair) Pick(_ float64, views []View) int {
	best, bestShare := 0, 2.0
	for _, v := range views {
		if v.AirtimeShare < bestShare {
			best, bestShare = v.Index, v.AirtimeShare
		}
	}
	return best
}

// MobilityAware scores clients by recent rate weighted by a per-state
// urgency: macro-away clients are drained before their channel collapses,
// macro-toward clients wait for their channel to improve. Every client is
// guaranteed MinShare of the airtime, so opportunism never becomes
// starvation.
type MobilityAware struct {
	// Urgency maps mobility states to scheduling weight; missing states
	// default to 1.
	Urgency map[core.State]float64
	// MinShare is the per-client airtime floor (0 uses 1/(2n)).
	MinShare float64
}

// DefaultUrgency is the §9-inspired weighting.
var DefaultUrgency = map[core.State]float64{
	core.StateMacroAway:   1.6,
	core.StateMacroToward: 0.6,
	core.StateMacroOrbit:  1.0,
}

// Name implements Policy.
func (m MobilityAware) Name() string { return "mobility-aware" }

// Pick implements Policy.
func (m MobilityAware) Pick(_ float64, views []View) int {
	urg := m.Urgency
	if urg == nil {
		urg = DefaultUrgency
	}
	// Airtime floor: any client below MinShare is served first (most
	// starved wins), guaranteeing bounded delay for everyone.
	minShare := m.MinShare
	if minShare <= 0 {
		minShare = 1 / (2 * float64(len(views)))
	}
	starved, starvedShare := -1, minShare
	for _, v := range views {
		if v.AirtimeShare < starvedShare {
			starved, starvedShare = v.Index, v.AirtimeShare
		}
	}
	if starved >= 0 {
		return starved
	}
	best, bestScore := 0, -1.0
	for _, v := range views {
		w := 1.0
		if u, ok := urg[v.State]; ok {
			w = u
		}
		// Rate-weighted urgency with a mild airtime correction.
		score := (v.RecentMbps + 1) * w * (1.2 - v.AirtimeShare)
		if score > bestScore {
			best, bestScore = v.Index, score
		}
	}
	return best
}

// Result summarizes a scheduling run.
type Result struct {
	// PerClientMbps is each client's delivered goodput.
	PerClientMbps []float64
	// TotalMbps is the cell throughput.
	TotalMbps float64
	// JainFairness is Jain's index over per-client throughputs (1 = equal).
	JainFairness float64
}

// Run schedules saturated downlink traffic to the clients for duration
// seconds under the policy, with mobility-adaptive aggregation.
func Run(clients []Client, pol Policy, agg aggregation.Policy, duration float64) Result {
	n := len(clients)
	res := Result{PerClientMbps: make([]float64, n)}
	if n == 0 {
		return res
	}
	if agg == nil {
		agg = aggregation.Fixed{Limit: 4e-3}
	}
	bits := make([]float64, n)
	airtime := make([]float64, n)
	recent := make([]*stats.EWMA, n)
	for i := range recent {
		recent[i] = stats.NewEWMA(0.1)
	}
	views := make([]View, n)

	t := 0.0
	var totalAir float64
	for t < duration {
		for i, c := range clients {
			state := core.StateUnknown
			if c.StateAt != nil {
				state = c.StateAt(t)
			}
			share := 0.0
			if totalAir > 0 {
				share = airtime[i] / totalAir
			}
			views[i] = View{
				Index:        i,
				State:        state,
				RecentMbps:   recent[i].Value(),
				AirtimeShare: share,
			}
		}
		pick := pol.Pick(t, views)
		if pick < 0 || pick >= n {
			pick = 0
		}
		c := clients[pick]
		state := views[pick].State
		if sa, ok := c.Adapter.(ratecontrol.StateAware); ok {
			sa.SetState(state)
		}
		mcs := c.Adapter.SelectRate(t)
		nMPDU := aggregation.MPDUs(agg, state, mcs, c.Link.Width, c.Link.SGI, c.Link.MPDUBytes)
		fr := c.Link.Transmit(t, mcs, nMPDU)
		c.Adapter.OnResult(t+fr.Airtime, fr)
		bits[pick] += fr.Goodput(c.Link.MPDUBytes)
		airtime[pick] += fr.Airtime
		totalAir += fr.Airtime
		recent[pick].Update(fr.Goodput(c.Link.MPDUBytes) / fr.Airtime / 1e6)
		t += fr.Airtime
	}

	var sum, sumSq float64
	for i := range clients {
		res.PerClientMbps[i] = bits[i] / duration / 1e6
		sum += res.PerClientMbps[i]
		sumSq += res.PerClientMbps[i] * res.PerClientMbps[i]
	}
	res.TotalMbps = sum
	if sumSq > 0 {
		res.JainFairness = sum * sum / (float64(n) * sumSq)
	}
	return res
}
