package sched

import (
	"testing"

	"mobiwlan/internal/aggregation"
	"mobiwlan/internal/channel"
	"mobiwlan/internal/core"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/ratecontrol"
	"mobiwlan/internal/sim"
	"mobiwlan/internal/stats"
)

// trio builds the scheduler's canonical workload: one away-walker, one
// toward-walker, one static client, all at a cell-edge power where channel
// quality actually changes over the run.
func trio(seed uint64, duration float64) []Client {
	mk := func(i int, scen *mobility.Scenario) Client {
		chCfg := channel.DefaultConfig()
		chCfg.TxPowerDBm = 2
		ch := channel.New(chCfg, scen, stats.NewRNG(seed+uint64(i)*31+5))
		return Client{
			Link:    mac.NewLink(ch, stats.NewRNG(seed+uint64(i)*31+9)),
			Adapter: ratecontrol.NewAtheros(ratecontrol.DefaultLinkConfig()),
			StateAt: sim.OracleStateFunc(scen),
		}
	}
	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = duration
	away := mobility.NewMacroScenario(mobility.HeadingAway, cfg, stats.NewRNG(seed+1))
	toward := mobility.NewMacroScenario(mobility.HeadingToward, cfg, stats.NewRNG(seed+2))
	static := mobility.NewScenario(mobility.Static, cfg, stats.NewRNG(seed+3))
	return []Client{mk(0, away), mk(1, toward), mk(2, static)}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	views := make([]View, 3)
	for i := range views {
		views[i].Index = i
	}
	if rr.Pick(0, views) != 0 || rr.Pick(0, views) != 1 || rr.Pick(0, views) != 2 || rr.Pick(0, views) != 0 {
		t.Fatal("round robin does not cycle")
	}
}

func TestAirtimeFairPicksSmallestShare(t *testing.T) {
	views := []View{
		{Index: 0, AirtimeShare: 0.5},
		{Index: 1, AirtimeShare: 0.2},
		{Index: 2, AirtimeShare: 0.3},
	}
	if got := (AirtimeFair{}).Pick(0, views); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
}

func TestMobilityAwarePrefersAwayClient(t *testing.T) {
	views := []View{
		{Index: 0, State: core.StateMacroAway, RecentMbps: 50, AirtimeShare: 0.33},
		{Index: 1, State: core.StateMacroToward, RecentMbps: 50, AirtimeShare: 0.33},
		{Index: 2, State: core.StateStatic, RecentMbps: 50, AirtimeShare: 0.33},
	}
	if got := (MobilityAware{}).Pick(0, views); got != 0 {
		t.Fatalf("Pick = %d, want the away-walker", got)
	}
}

func TestRunBasics(t *testing.T) {
	clients := trio(1, 8)
	res := Run(clients, &RoundRobin{}, nil, 8)
	if len(res.PerClientMbps) != 3 || res.TotalMbps <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.JainFairness <= 0 || res.JainFairness > 1.000001 {
		t.Fatalf("fairness = %v", res.JainFairness)
	}
	for i, m := range res.PerClientMbps {
		if m <= 0 {
			t.Fatalf("client %d starved under round robin", i)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res := Run(nil, &RoundRobin{}, nil, 1)
	if res.TotalMbps != 0 {
		t.Fatal("empty run should be zero")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(trio(2, 6), &RoundRobin{}, nil, 6)
	b := Run(trio(2, 6), &RoundRobin{}, nil, 6)
	if a.TotalMbps != b.TotalMbps {
		t.Fatalf("same-seed runs differ: %v vs %v", a.TotalMbps, b.TotalMbps)
	}
}

func TestMobilityAwareBeatsFairOnCellTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	// Draining the away-walker early should lift total cell throughput
	// versus strict airtime fairness, averaged over seeds.
	var fair, aware []float64
	for seed := uint64(0); seed < 4; seed++ {
		duration := 14.0
		fair = append(fair, Run(trio(seed*7+1, duration), AirtimeFair{},
			aggregation.Adaptive{}, duration).TotalMbps)
		aware = append(aware, Run(trio(seed*7+1, duration), MobilityAware{},
			aggregation.Adaptive{}, duration).TotalMbps)
	}
	f, a := stats.Mean(fair), stats.Mean(aware)
	t.Logf("cell total: airtime-fair=%.1f Mbps mobility-aware=%.1f Mbps (%+.1f%%)", f, a, 100*(a/f-1))
	if a < f*0.98 {
		t.Fatalf("mobility-aware scheduling (%.1f) clearly below airtime-fair (%.1f)", a, f)
	}
}

func TestPolicyNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "round-robin" ||
		(AirtimeFair{}).Name() != "airtime-fair" ||
		(MobilityAware{}).Name() != "mobility-aware" {
		t.Fatal("policy names wrong")
	}
}

func TestMobilityAwareNeverStarves(t *testing.T) {
	clients := trio(9, 10)
	res := Run(clients, MobilityAware{}, aggregation.Adaptive{}, 10)
	for i, m := range res.PerClientMbps {
		if m <= 0 {
			t.Fatalf("client %d starved under mobility-aware scheduling: %v", i, res.PerClientMbps)
		}
	}
	if res.JainFairness < 0.4 {
		t.Fatalf("fairness collapsed: Jain %.2f", res.JainFairness)
	}
}

func TestMobilityAwareFloorServesStarved(t *testing.T) {
	views := []View{
		{Index: 0, State: core.StateMacroAway, RecentMbps: 200, AirtimeShare: 0.9},
		{Index: 1, State: core.StateStatic, RecentMbps: 0, AirtimeShare: 0.05},
	}
	if got := (MobilityAware{}).Pick(0, views); got != 1 {
		t.Fatalf("Pick = %d, want the starved client", got)
	}
}
