package ratecontrol

import (
	"mobiwlan/internal/core"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/obs"
	"mobiwlan/internal/phy"
)

// Table2 holds the paper's per-mobility-state protocol parameters
// (paper Table 2, rate-adaptation rows). The scanned copy of the paper
// lost leading digits in several cells; the values here follow the paper's
// stated design rules — long PER history when static, short under
// mobility, no retries when moving away, aggressive probing when moving
// towards — and are recorded in EXPERIMENTS.md.
var Table2 = map[core.State]AtherosParams{
	core.StateStatic:        {Alpha: 1.0 / 16, RateRetries: 2, ProbeInterval: 0.5},
	core.StateEnvironmental: {Alpha: 1.0 / 12, RateRetries: 2, ProbeInterval: 0.5},
	core.StateMicro:         {Alpha: 1.0 / 4, RateRetries: 1, ProbeInterval: 0.1},
	core.StateMacroAway:     {Alpha: 1.0 / 3, RateRetries: 0, ProbeInterval: 1.0},
	core.StateMacroToward:   {Alpha: 1.0 / 3, RateRetries: 2, ProbeInterval: 0.02},
	core.StateUnknown:       {Alpha: 1.0 / 8, RateRetries: 0, ProbeInterval: 0.1},
	// Orbital macro-mobility (AoA extension): fast channel, flat path
	// loss — short history, moderate probing.
	core.StateMacroOrbit: {Alpha: 1.0 / 3, RateRetries: 1, ProbeInterval: 0.1},
}

// MobilityAware augments the Atheros algorithm with the classifier's
// mobility state (paper §4.2): each state switches the three Table 2 knobs.
type MobilityAware struct {
	inner *Atheros
	state core.State

	// Optional telemetry (see Instrument). SetState carries no
	// timestamp, so trace events reuse the last time seen by
	// SelectRate/OnResult — in the simulators SetState is always called
	// between frames of the same loop, so lastT is at most one frame
	// stale.
	met   *Metrics
	tr    *obs.Tracer
	lastT float64
}

// NewMobilityAware wraps a fresh Atheros instance for the link.
func NewMobilityAware(lc LinkConfig) *MobilityAware {
	m := &MobilityAware{inner: NewAtheros(lc), state: core.StateUnknown}
	m.inner.SetParams(Table2[core.StateUnknown])
	return m
}

// Name implements Adapter.
func (m *MobilityAware) Name() string { return "motion-aware-atheros" }

// Instrument attaches telemetry sinks (either may be nil): knob-change
// counters with per-state attribution, and a "knobs" trace event per
// applied change.
func (m *MobilityAware) Instrument(met *Metrics, tr *obs.Tracer) {
	m.met = met
	m.tr = tr
}

// SetState implements StateAware: the AP pushes classifier updates here.
func (m *MobilityAware) SetState(s core.State) {
	if s == m.state {
		return
	}
	m.state = s
	if p, ok := Table2[s]; ok {
		m.inner.SetParams(p)
		m.met.observeChange(s)
		m.tr.Emit(m.lastT, "ratecontrol", "knobs", p.Alpha, float64(p.RateRetries), core.StateLabel(s))
	}
}

// State returns the currently applied mobility state.
func (m *MobilityAware) State() core.State { return m.state }

// SelectRate implements Adapter.
func (m *MobilityAware) SelectRate(t float64) phy.MCS {
	m.lastT = t
	return m.inner.SelectRate(t)
}

// OnResult implements Adapter.
func (m *MobilityAware) OnResult(t float64, res mac.FrameResult) {
	m.lastT = t
	m.inner.OnResult(t, res)
}

// Inner exposes the wrapped Atheros state for inspection in tests.
func (m *MobilityAware) Inner() *Atheros { return m.inner }
