package ratecontrol

import (
	"testing"

	"mobiwlan/internal/channel"
	"mobiwlan/internal/core"
	"mobiwlan/internal/csi"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/phy"
	"mobiwlan/internal/stats"
)

func testLink(mode mobility.Mode, seed uint64) *mac.Link {
	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = 120
	scen := mobility.NewScenario(mode, cfg, stats.NewRNG(seed))
	ch := channel.New(channel.DefaultConfig(), scen, stats.NewRNG(seed+1))
	return mac.NewLink(ch, stats.NewRNG(seed+2))
}

func TestCandidateRatesLadder(t *testing.T) {
	lc := DefaultLinkConfig()
	ladder := candidateRates(lc)
	// 16 usable (2-stream) minus skipped {5,6,7,8} = 12, minus the two
	// equal-rate duplicates (60 and 90 Mb/s appear for both stream counts).
	if len(ladder) != 10 {
		t.Fatalf("ladder has %d rungs, want 10", len(ladder))
	}
	prev := -1.0
	for _, m := range ladder {
		r := m.RateMbps(lc.Width, lc.SGI)
		if r <= prev {
			t.Fatalf("ladder not ascending at %v", m)
		}
		prev = r
		if m.Index >= 5 && m.Index <= 8 {
			t.Fatalf("skipped MCS %d present in ladder", m.Index)
		}
	}
}

func TestAtherosStartsHigh(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	if a.CurrentIndex() != len(a.Ladder())-1 {
		t.Fatal("Atheros should start at the highest rate")
	}
	if a.Name() != "atheros" {
		t.Fatal("bad name")
	}
}

func TestAtherosDownshiftOnTotalLoss(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	top := a.Ladder()[a.CurrentIndex()]
	// A frame with zero deliveries and default params (0 retries) shifts
	// down immediately.
	a.OnResult(0, mac.FrameResult{MCS: top, NMPDU: 16, Delivered: 0, BlockAck: false})
	if a.CurrentIndex() != len(a.Ladder())-2 {
		t.Fatalf("index after total loss = %d", a.CurrentIndex())
	}
}

func TestAtherosRetriesBeforeDownshift(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	p := a.Params()
	p.RateRetries = 2
	a.SetParams(p)
	top := a.Ladder()[a.CurrentIndex()]
	start := a.CurrentIndex()
	fail := mac.FrameResult{MCS: top, NMPDU: 16, Delivered: 0, BlockAck: false}
	a.OnResult(0, fail)
	a.OnResult(0.01, fail)
	if a.CurrentIndex() != start {
		t.Fatal("should still be retrying at the current rate")
	}
	a.OnResult(0.02, fail)
	if a.CurrentIndex() != start-1 {
		t.Fatalf("index after retries exhausted = %d, want %d", a.CurrentIndex(), start-1)
	}
}

func TestAtherosPERMonotonicity(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	mid := 5
	m := a.Ladder()[mid]
	// Report heavy loss at a middle rate; all higher rates must now have
	// PER at least as high.
	a.OnResult(0, mac.FrameResult{MCS: m, NMPDU: 10, Delivered: 1, BlockAck: true})
	for j := mid + 1; j < len(a.per); j++ {
		if a.per[j].Value() < a.per[mid].Value()-1e-12 {
			t.Fatalf("PER monotonicity violated at rung %d", j)
		}
	}
}

func TestAtherosProbesHigherRate(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	// Walk down to a low rung first.
	for i := 0; i < 8; i++ {
		cur := a.Ladder()[a.CurrentIndex()]
		a.OnResult(float64(i)*0.001, mac.FrameResult{MCS: cur, NMPDU: 8, Delivered: 0, BlockAck: false})
	}
	low := a.CurrentIndex()
	// After the probe interval, SelectRate should offer the next rung up.
	m := a.SelectRate(10)
	if m.Index != a.Ladder()[low+1].Index {
		t.Fatalf("probe rate = %v, want rung %d", m, low+1)
	}
	// A successful probe with good PER moves up.
	a.OnResult(10.001, mac.FrameResult{MCS: m, NMPDU: 8, Delivered: 8, BlockAck: true})
	if a.CurrentIndex() != low+1 {
		t.Fatalf("index after successful probe = %d, want %d", a.CurrentIndex(), low+1)
	}
}

func TestAtherosProbeFailureStays(t *testing.T) {
	a := NewAtheros(DefaultLinkConfig())
	for i := 0; i < 8; i++ {
		cur := a.Ladder()[a.CurrentIndex()]
		a.OnResult(float64(i)*0.001, mac.FrameResult{MCS: cur, NMPDU: 8, Delivered: 0, BlockAck: false})
	}
	low := a.CurrentIndex()
	m := a.SelectRate(10)
	a.OnResult(10.001, mac.FrameResult{MCS: m, NMPDU: 8, Delivered: 0, BlockAck: false})
	if a.CurrentIndex() != low {
		t.Fatalf("failed probe should not move the rate (at %d, want %d)", a.CurrentIndex(), low)
	}
}

func TestAtherosConvergesToSustainableRate(t *testing.T) {
	link := testLink(mobility.Static, 1)
	a := NewAtheros(DefaultLinkConfig())
	res := Run(link, a, nil, 3, nil)
	if res.Mbps <= 0 {
		t.Fatal("no throughput on a static link")
	}
	// The converged rate should be decodable: its required SNR is at or
	// below the link's effective SNR plus slack.
	probe := link.Transmit(3, phy.ByIndex(0), 1)
	cur := a.Ladder()[a.CurrentIndex()]
	if phy.RequiredSNRdB(cur) > probe.EffSNRdB+6 {
		t.Fatalf("converged on %v needing %.1f dB but link has %.1f dB",
			cur, phy.RequiredSNRdB(cur), probe.EffSNRdB)
	}
}

func TestMobilityAwareStateSwitchesParams(t *testing.T) {
	m := NewMobilityAware(DefaultLinkConfig())
	m.SetState(core.StateStatic)
	if got := m.Inner().Params(); got != Table2[core.StateStatic] {
		t.Fatalf("static params = %+v", got)
	}
	m.SetState(core.StateMacroAway)
	if got := m.Inner().Params(); got != Table2[core.StateMacroAway] {
		t.Fatalf("away params = %+v", got)
	}
	if m.State() != core.StateMacroAway {
		t.Fatal("State not recorded")
	}
}

func TestTable2DesignRules(t *testing.T) {
	// The paper's stated design rules must hold in the parameter table.
	if Table2[core.StateStatic].Alpha >= Table2[core.StateMacroAway].Alpha {
		t.Error("static should weight history more (smaller alpha) than macro")
	}
	if Table2[core.StateMacroAway].RateRetries != 0 {
		t.Error("moving away must down-shift immediately (0 retries)")
	}
	if Table2[core.StateMacroToward].ProbeInterval >= Table2[core.StateMacroAway].ProbeInterval {
		t.Error("moving toward should probe more aggressively than moving away")
	}
	if Table2[core.StateStatic].RateRetries < 1 {
		t.Error("static should retry before down-shifting")
	}
}

func TestFixedAdapter(t *testing.T) {
	f := Fixed{MCS: phy.ByIndex(3)}
	if f.SelectRate(0).Index != 3 || f.Name() != "fixed" {
		t.Fatal("Fixed misbehaves")
	}
	f.OnResult(0, mac.FrameResult{}) // no-op
}

func TestRapidSampleHintSwitching(t *testing.T) {
	r := NewRapidSample(DefaultLinkConfig())
	r.SetState(core.StateMicro)
	if !r.mobile {
		t.Fatal("micro should set the mobile hint")
	}
	r.SetState(core.StateStatic)
	if r.mobile {
		t.Fatal("static should clear the mobile hint")
	}
	r.SetState(core.StateMacroAway)
	if !r.mobile {
		t.Fatal("macro should set the mobile hint")
	}
}

func TestRapidSampleDropsOnFailureWhenMobile(t *testing.T) {
	r := NewRapidSample(DefaultLinkConfig())
	r.SetState(core.StateMacroAway)
	start := r.cur
	m := r.ladder[r.cur]
	r.OnResult(0, mac.FrameResult{MCS: m, NMPDU: 8, Delivered: 0, BlockAck: false})
	if r.cur != start-1 {
		t.Fatalf("cur = %d, want %d", r.cur, start-1)
	}
}

func TestSoftRateStepsOneNotch(t *testing.T) {
	s := NewSoftRate(DefaultLinkConfig())
	// Strong channel: steps up exactly one rung per frame.
	cur := s.cur
	s.OnResult(0, mac.FrameResult{MCS: s.ladder[cur], EffSNRdB: 40})
	if s.cur != cur+1 {
		t.Fatalf("SoftRate moved %d rungs, want 1", s.cur-cur)
	}
	// Weak channel: steps down.
	s.cur = 5
	s.OnResult(0, mac.FrameResult{MCS: s.ladder[5], EffSNRdB: -5})
	if s.cur != 4 {
		t.Fatalf("SoftRate should step down to 4, at %d", s.cur)
	}
}

func TestESNRJumpsDirectly(t *testing.T) {
	e := NewESNR(DefaultLinkConfig())
	m := csi.NewMatrix(52, 3, 2)
	m.Set(0, 0, 0, 1)
	res := mac.FrameResult{MCS: phy.ByIndex(0), EffSNRdB: 40, CSI: m}
	e.OnResult(0, res)
	got := e.SelectRate(0)
	if got.RateMbps(phy.Width40, true) < 200 {
		t.Fatalf("ESNR at 40 dB picked %v — should jump straight to a top rate", got)
	}
	// And straight back down.
	res.EffSNRdB = 3
	e.OnResult(1, res)
	if e.SelectRate(1).Index != e.ladder[0].Index {
		t.Fatalf("ESNR at 3 dB picked %v", e.SelectRate(1))
	}
}

func TestESNRIgnoresMissingCSI(t *testing.T) {
	e := NewESNR(DefaultLinkConfig())
	before := e.SelectRate(0)
	e.OnResult(0, mac.FrameResult{EffSNRdB: 40})
	if e.SelectRate(0) != before {
		t.Fatal("ESNR should ignore results without CSI")
	}
}

func TestRunProducesThroughput(t *testing.T) {
	link := testLink(mobility.Static, 11)
	res := Run(link, NewAtheros(DefaultLinkConfig()), nil, 2, nil)
	if res.Mbps <= 0 || res.Frames == 0 {
		t.Fatalf("Run = %+v", res)
	}
}

func TestRunHookIsCalled(t *testing.T) {
	link := testLink(mobility.Static, 12)
	calls := 0
	Run(link, NewAtheros(DefaultLinkConfig()), nil, 0.5, func(float64) { calls++ })
	if calls == 0 {
		t.Fatal("hook never called")
	}
}

func TestMobilityAwareBeatsStockUnderMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	// The paper's headline §4 result, in miniature: on walking links the
	// motion-aware parameters should outperform (or at least match) stock
	// Atheros. Averaged over several seeds to damp variance.
	var stock, aware []float64
	for seed := uint64(0); seed < 5; seed++ {
		cfg := mobility.DefaultSceneConfig()
		cfg.Duration = 60
		scen := mobility.NewMacroScenario(mobility.HeadingToward, cfg, stats.NewRNG(seed*97+3))
		mkLink := func(s2 uint64) *mac.Link {
			ch := channel.New(channel.DefaultConfig(), scen, stats.NewRNG(s2))
			return mac.NewLink(ch, stats.NewRNG(s2+7))
		}
		stockRes := Run(mkLink(seed+100), NewAtheros(DefaultLinkConfig()), nil, 12, nil)
		ma := NewMobilityAware(DefaultLinkConfig())
		ma.SetState(core.StateMacroToward)
		awareRes := Run(mkLink(seed+100), ma, nil, 12, nil)
		stock = append(stock, stockRes.Mbps)
		aware = append(aware, awareRes.Mbps)
	}
	s, a := stats.Mean(stock), stats.Mean(aware)
	t.Logf("toward-walk throughput: stock=%.1f Mbps, motion-aware=%.1f Mbps", s, a)
	if a < s*0.95 {
		t.Fatalf("motion-aware (%.1f) clearly worse than stock (%.1f)", a, s)
	}
}
