package ratecontrol

import (
	"testing"

	"mobiwlan/internal/channel"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
	"mobiwlan/internal/traceio"
)

func recordTrace(t *testing.T, mode mobility.Mode, seed uint64, duration float64) *traceio.Replay {
	t.Helper()
	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = duration
	scen := mobility.NewScenario(mode, cfg, stats.NewRNG(seed))
	chCfg := channel.DefaultConfig()
	chCfg.TxPowerDBm = 8
	ch := channel.New(chCfg, scen, stats.NewRNG(seed+5))
	return traceio.NewReplay(traceio.Capture(ch, 0.02, duration))
}

func TestRunReplayBasics(t *testing.T) {
	rp := recordTrace(t, mobility.Static, 1, 5)
	res := RunReplay(rp, NewAtheros(DefaultLinkConfig()), DefaultLinkConfig(), 8, 5, 42)
	if res.Mbps <= 0 || res.Frames == 0 {
		t.Fatalf("replay result = %+v", res)
	}
}

func TestRunReplayDeterministic(t *testing.T) {
	rp := recordTrace(t, mobility.Macro, 2, 5)
	a := RunReplay(rp, NewAtheros(DefaultLinkConfig()), DefaultLinkConfig(), 8, 5, 7)
	b := RunReplay(rp, NewAtheros(DefaultLinkConfig()), DefaultLinkConfig(), 8, 5, 7)
	if a.Mbps != b.Mbps || a.Frames != b.Frames {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunReplayIdenticalConditionsAcrossSchemes(t *testing.T) {
	// Two adapters replaying the same trace with the same seed see the
	// same channel; the idealized ESNR tracker should never lose to a
	// fixed lowest-rate adapter.
	rp := recordTrace(t, mobility.Macro, 3, 8)
	lc := DefaultLinkConfig()
	esnr := RunReplay(rp, NewESNR(lc), lc, 8, 8, 11)
	fixedLow := RunReplay(rp, Fixed{MCS: candidateRates(lc)[0]}, lc, 8, 8, 11)
	if esnr.Mbps <= fixedLow.Mbps {
		t.Fatalf("ESNR (%.1f) should beat the lowest fixed rate (%.1f) on replay",
			esnr.Mbps, fixedLow.Mbps)
	}
}

func TestRunReplayClampsNMPDU(t *testing.T) {
	rp := recordTrace(t, mobility.Static, 4, 2)
	res := RunReplay(rp, NewAtheros(DefaultLinkConfig()), DefaultLinkConfig(), 0, 2, 1)
	if res.Frames == 0 {
		t.Fatal("no frames with clamped nMPDU")
	}
}
