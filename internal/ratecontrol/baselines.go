package ratecontrol

import (
	"mobiwlan/internal/core"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/phy"
	"mobiwlan/internal/stats"
)

// Fixed always transmits at one MCS.
type Fixed struct {
	MCS phy.MCS
}

// Name implements Adapter.
func (f Fixed) Name() string { return "fixed" }

// SelectRate implements Adapter.
func (f Fixed) SelectRate(float64) phy.MCS { return f.MCS }

// OnResult implements Adapter.
func (f Fixed) OnResult(float64, mac.FrameResult) {}

// RapidSample is the sensor-hint scheme from "Improving Wireless Network
// Performance Using Sensor Hints" (paper ref. [1]): a binary
// mobile/static hint selects between SampleRate-style behaviour (static:
// long-window averaging, occasional sampling) and RapidSample (mobile:
// drop immediately on loss, re-probe higher rates after a short hold).
// Unlike the paper's scheme, it cannot distinguish micro from macro or
// toward from away.
type RapidSample struct {
	lc     LinkConfig
	ladder []phy.MCS
	mobile bool

	cur        int
	ewma       []*stats.EWMA
	frameCount int
	lastUp     float64
}

// NewRapidSample builds the adapter.
func NewRapidSample(lc LinkConfig) *RapidSample {
	ladder := candidateRates(lc)
	r := &RapidSample{
		lc:     lc,
		ladder: ladder,
		ewma:   make([]*stats.EWMA, len(ladder)),
		cur:    len(ladder) / 2,
	}
	for i := range r.ewma {
		r.ewma[i] = stats.NewEWMA(0.1)
	}
	return r
}

// Name implements Adapter.
func (r *RapidSample) Name() string { return "rapidsample" }

// SetState implements StateAware; only the binary device-mobility bit is
// consumed (that is all an accelerometer hint provides).
func (r *RapidSample) SetState(s core.State) {
	r.mobile = s == core.StateMicro || s == core.StateMacroAway || s == core.StateMacroToward
}

// SelectRate implements Adapter.
func (r *RapidSample) SelectRate(t float64) phy.MCS {
	r.frameCount++
	if r.mobile {
		// RapidSample: after a short hold at a reduced rate, retry the
		// next higher rate.
		if r.cur < len(r.ladder)-1 && t-r.lastUp > 0.05 {
			return r.ladder[r.cur+1]
		}
		return r.ladder[r.cur]
	}
	// SampleRate-ish: every 10th frame samples a neighbouring rate.
	if r.frameCount%10 == 0 && r.cur < len(r.ladder)-1 {
		return r.ladder[r.cur+1]
	}
	return r.ladder[r.cur]
}

// OnResult implements Adapter.
func (r *RapidSample) OnResult(t float64, res mac.FrameResult) {
	idx := -1
	for i, c := range r.ladder {
		if c.Index == res.MCS.Index {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	instPER := 1.0
	if res.NMPDU > 0 {
		instPER = 1 - float64(res.Delivered)/float64(res.NMPDU)
	}
	r.ewma[idx].Update(instPER)
	if r.mobile {
		if !res.BlockAck || instPER > 0.5 {
			// Immediate drop on failure.
			if r.cur > 0 {
				r.cur--
			}
			r.lastUp = t
		} else if idx > r.cur {
			// Successful upward retry: adopt it.
			r.cur = idx
			r.lastUp = t
		}
		return
	}
	// Static: move to the best estimated-throughput rate among known ones.
	best, bestTput := r.cur, -1.0
	for i := range r.ladder {
		if !r.ewma[i].Initialized() && i != r.cur {
			continue
		}
		tput := r.ladder[i].RateMbps(r.lc.Width, r.lc.SGI) * (1 - r.ewma[i].Value())
		if tput > bestTput {
			best, bestTput = i, tput
		}
	}
	r.cur = best
}

// SoftRate models per-frame channel feedback from the client (paper ref.
// [10]): the client's PHY reports whether the current rate's error rate is
// too high or comfortably low, and the AP steps one rate down or up. It
// adapts within a frame's turnaround but only ever moves one notch.
type SoftRate struct {
	lc     LinkConfig
	ladder []phy.MCS
	cur    int
}

// NewSoftRate builds the adapter.
func NewSoftRate(lc LinkConfig) *SoftRate {
	ladder := candidateRates(lc)
	return &SoftRate{lc: lc, ladder: ladder, cur: 0}
}

// Name implements Adapter.
func (s *SoftRate) Name() string { return "softrate" }

// SelectRate implements Adapter.
func (s *SoftRate) SelectRate(float64) phy.MCS { return s.ladder[s.cur] }

// OnResult implements Adapter.
func (s *SoftRate) OnResult(t float64, res mac.FrameResult) {
	// The client PHY evaluates the observed channel against the current
	// rate: step down if the frame's SNR cannot support it, step up if it
	// comfortably supports the next rate.
	snr := res.EffSNRdB
	cur := s.ladder[s.cur]
	if snr < phy.RequiredSNRdB(cur) && s.cur > 0 {
		s.cur--
		return
	}
	if s.cur < len(s.ladder)-1 {
		next := s.ladder[s.cur+1]
		if snr > phy.RequiredSNRdB(next)+1 {
			s.cur++
		}
	}
}

// ESNR models CSI-feedback rate selection (paper ref. [9]): the client
// reports CSI; the AP computes the effective SNR and jumps directly to the
// best-supported rate in one observation — the strongest baseline in the
// paper's Fig. 9(b), at the cost of per-client calibration the paper's
// scheme avoids.
type ESNR struct {
	lc      LinkConfig
	ladder  []phy.MCS
	current phy.MCS
	// MarginDB backs the selection off the exact threshold (calibration
	// slack).
	MarginDB float64
}

// NewESNR builds the adapter.
func NewESNR(lc LinkConfig) *ESNR {
	// The 2.5 dB margin models the per-client calibration the scheme
	// requires (paper §4.3): it absorbs estimation error and the channel
	// drift between the observation and the end of the next frame.
	return &ESNR{lc: lc, ladder: candidateRates(lc), current: phy.ByIndex(0), MarginDB: 2.5}
}

// Name implements Adapter.
func (e *ESNR) Name() string { return "esnr" }

// SelectRate implements Adapter.
func (e *ESNR) SelectRate(float64) phy.MCS { return e.current }

// OnResult implements Adapter.
func (e *ESNR) OnResult(t float64, res mac.FrameResult) {
	if res.CSI == nil {
		return
	}
	// res.EffSNRdB is the effective SNR computed from the fed-back CSI —
	// exactly what the ESNR scheme derives at the client.
	esnr := res.EffSNRdB
	best := e.ladder[0]
	for _, m := range e.ladder {
		if esnr >= phy.RequiredSNRdB(m)+e.MarginDB {
			best = m
		}
	}
	e.current = best
}
