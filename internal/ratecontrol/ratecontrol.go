// Package ratecontrol implements the bit-rate adaptation algorithms the
// paper studies (§4):
//
//   - Atheros: a faithful re-implementation of the frame-based Atheros
//     MIMO rate adaptation the HP MSM 460 ships with — per-rate PER EWMA
//     (alpha 1/8), PER monotonicity across rates, immediate down-shift on
//     a missing Block ACK, and periodic probing of the next higher rate.
//   - MobilityAware: Atheros RA driven by the paper's Table 2 knobs —
//     per-mobility-state PER smoothing factor, retry count before
//     down-shifting, and probe interval.
//   - RapidSample: the sensor-hint scheme of Ravindranath et al. (paper
//     ref. [1]) — SampleRate-like behaviour when static, an aggressive
//     fast-sampling variant when a binary mobility hint fires.
//   - SoftRate: per-frame channel-quality feedback that steps the rate up
//     or down one notch (it can only indicate a direction, paper §4.3).
//   - ESNR: CSI feedback mapped through effective SNR directly to the
//     best rate in a single observation.
//   - Fixed: a trivial fixed-rate baseline.
//
// All adapters implement Adapter and are driven frame-by-frame by the
// link simulator.
package ratecontrol

import (
	"sort"

	"mobiwlan/internal/core"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/phy"
	"mobiwlan/internal/stats"
)

// Adapter selects the MCS for each frame and learns from its outcome.
type Adapter interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// SelectRate returns the MCS for the frame to be sent at time t.
	SelectRate(t float64) phy.MCS
	// OnResult feeds back the outcome of the frame.
	OnResult(t float64, res mac.FrameResult)
}

// StateAware is implemented by adapters that consume the classifier's
// mobility state (the AP pushes updates as classifications change).
type StateAware interface {
	SetState(s core.State)
}

// LinkConfig carries the PHY facts an adapter needs to rank rates.
type LinkConfig struct {
	Width      phy.ChannelWidth
	SGI        bool
	MPDUBytes  int
	MaxStreams int
}

// DefaultLinkConfig matches mac.NewLink.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{Width: phy.Width40, SGI: true, MPDUBytes: 1500, MaxStreams: 2}
}

// candidateRates returns the rate ladder the Atheros algorithm walks:
// usable MCS sorted by PHY rate, with single-stream MCS 5-7 and two-stream
// MCS 8 removed to keep PER monotonic along the ladder (paper §4.1).
func candidateRates(lc LinkConfig) []phy.MCS {
	skip := map[int]bool{5: true, 6: true, 7: true, 8: true}
	var out []phy.MCS
	for _, m := range phy.Usable(lc.MaxStreams) {
		if skip[m.Index] {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].RateMbps(lc.Width, lc.SGI), out[j].RateMbps(lc.Width, lc.SGI)
		if ri != rj {
			return ri < rj
		}
		return phy.RequiredSNRdB(out[i]) < phy.RequiredSNRdB(out[j])
	})
	// Equal-rate rungs (e.g. 1-stream 16-QAM 1/2 vs 2-stream QPSK 1/2)
	// keep only the easier (lower required SNR) scheme.
	dedup := out[:0]
	for i, m := range out {
		if i > 0 && m.RateMbps(lc.Width, lc.SGI) == dedup[len(dedup)-1].RateMbps(lc.Width, lc.SGI) {
			continue
		}
		dedup = append(dedup, m)
	}
	return dedup
}

// AtherosParams are the three knobs the paper's mobility hints control.
type AtherosParams struct {
	// Alpha is the PER EWMA smoothing factor (default 1/8; larger weights
	// recent frames more).
	Alpha float64
	// RateRetries is how many consecutive Block-ACK-less frames are
	// retried at the current rate before shifting down (default 0:
	// shift immediately).
	RateRetries int
	// ProbeInterval is the minimum time between probes of the next
	// higher rate, in seconds.
	ProbeInterval float64
}

// DefaultAtherosParams returns the stock driver behaviour.
func DefaultAtherosParams() AtherosParams {
	return AtherosParams{Alpha: 1.0 / 8, RateRetries: 0, ProbeInterval: 0.1}
}

// Atheros is the frame-based Atheros MIMO rate adaptation (paper §4.1).
type Atheros struct {
	lc     LinkConfig
	params AtherosParams

	ladder     []phy.MCS
	per        []*stats.EWMA
	cur        int
	failStreak int
	lastProbe  float64
	probing    bool
	probeIdx   int
}

// NewAtheros builds the stock algorithm for a link.
func NewAtheros(lc LinkConfig) *Atheros {
	ladder := candidateRates(lc)
	a := &Atheros{
		lc:     lc,
		params: DefaultAtherosParams(),
		ladder: ladder,
		per:    make([]*stats.EWMA, len(ladder)),
		cur:    len(ladder) - 1, // starts at the highest rate (paper §4.1)
	}
	for i := range a.per {
		a.per[i] = stats.NewEWMA(a.params.Alpha)
	}
	return a
}

// Name implements Adapter.
func (a *Atheros) Name() string { return "atheros" }

// Params returns the currently active knobs.
func (a *Atheros) Params() AtherosParams { return a.params }

// SetParams swaps the knobs (used by the mobility-aware wrapper).
func (a *Atheros) SetParams(p AtherosParams) { a.params = p }

// Ladder exposes the candidate rate ladder (ascending PHY rate).
func (a *Atheros) Ladder() []phy.MCS { return a.ladder }

// CurrentIndex reports the position on the ladder.
func (a *Atheros) CurrentIndex() int { return a.cur }

// SelectRate implements Adapter.
func (a *Atheros) SelectRate(t float64) phy.MCS {
	if !a.probing && a.cur < len(a.ladder)-1 &&
		t-a.lastProbe >= a.params.ProbeInterval {
		a.probing = true
		a.probeIdx = a.cur + 1
		return a.ladder[a.probeIdx]
	}
	return a.ladder[a.cur]
}

// estThroughput is the algorithm's objective: rate * (1 - PER).
func (a *Atheros) estThroughput(i int) float64 {
	return a.ladder[i].RateMbps(a.lc.Width, a.lc.SGI) * (1 - a.per[i].Value())
}

// OnResult implements Adapter.
func (a *Atheros) OnResult(t float64, res mac.FrameResult) {
	idx := a.ladderIndex(res.MCS)
	if idx < 0 {
		return
	}
	instPER := 1.0
	if res.NMPDU > 0 {
		instPER = 1 - float64(res.Delivered)/float64(res.NMPDU)
	}
	a.per[idx].Alpha = a.params.Alpha
	a.per[idx].Update(instPER)
	// PER is assumed monotonically increasing along the ladder; clamp the
	// other rates' estimates accordingly (paper §4.1).
	for j := idx + 1; j < len(a.per); j++ {
		if a.per[j].Value() < a.per[idx].Value() {
			a.per[j].Set(a.per[idx].Value())
		}
	}
	for j := 0; j < idx; j++ {
		if a.per[j].Value() > a.per[idx].Value() {
			a.per[j].Set(a.per[idx].Value())
		}
	}

	if a.probing && idx == a.probeIdx {
		// Probe outcome: a clean probe overrides the pessimistic PER the
		// rung inherited from monotonicity clamping (that value was never
		// measured), then the rate moves up if the rung now looks better.
		a.probing = false
		a.lastProbe = t
		if res.BlockAck && instPER < 0.5 {
			a.per[idx].Set(instPER)
			if a.estThroughput(idx) > a.estThroughput(a.cur) {
				a.cur = idx
			}
		}
		return
	}

	if !res.BlockAck {
		// Complete loss: retry at the current rate up to RateRetries
		// times, then shift down.
		a.failStreak++
		if a.failStreak > a.params.RateRetries && a.cur > 0 {
			a.cur--
			a.failStreak = 0
		}
		return
	}
	a.failStreak = 0
	// High smoothed PER at the current rate: fall back if the next lower
	// rate promises more goodput.
	if a.per[a.cur].Value() > 0.4 && a.cur > 0 &&
		a.estThroughput(a.cur-1) > a.estThroughput(a.cur) {
		a.cur--
	}
}

func (a *Atheros) ladderIndex(m phy.MCS) int {
	for i, c := range a.ladder {
		if c.Index == m.Index {
			return i
		}
	}
	return -1
}
