package ratecontrol

import (
	"mobiwlan/internal/mac"
	"mobiwlan/internal/phy"
)

// AggregationFunc decides how many MPDUs to aggregate for a frame sent at
// time t at the given MCS. The default policy fills a 4 ms aggregation
// time limit (the stock Atheros configuration, paper §5).
type AggregationFunc func(t float64, m phy.MCS) int

// DefaultAggregation returns the stock fixed-4 ms policy for a link.
func DefaultAggregation(lc LinkConfig) AggregationFunc {
	return func(t float64, m phy.MCS) int {
		return phy.MPDUsForAggregationTime(m, lc.Width, lc.SGI, 4e-3, lc.MPDUBytes)
	}
}

// RunResult summarizes a saturated-download run.
type RunResult struct {
	// Mbps is the achieved MAC goodput.
	Mbps float64
	// Frames is the number of transmit opportunities used.
	Frames int
	// DeliveredMPDUs counts acknowledged subframes.
	DeliveredMPDUs int
	// AvgMCSIndex is the airtime-weighted mean MCS index used.
	AvgMCSIndex float64
}

// Run drives the adapter over the link with saturated download traffic for
// duration seconds. agg may be nil (stock 4 ms aggregation). onFrame, if
// non-nil, runs before every frame — the hook the simulator uses to push
// classifier state into StateAware adapters.
func Run(link *mac.Link, ad Adapter, agg AggregationFunc, duration float64, onFrame func(t float64)) RunResult {
	lc := LinkConfig{Width: link.Width, SGI: link.SGI, MPDUBytes: link.MPDUBytes, MaxStreams: link.MaxStreams()}
	if agg == nil {
		agg = DefaultAggregation(lc)
	}
	var res RunResult
	var bits float64
	var mcsWeighted float64
	t := 0.0
	for t < duration {
		if onFrame != nil {
			onFrame(t)
		}
		m := ad.SelectRate(t)
		n := agg(t, m)
		fr := link.Transmit(t, m, n)
		ad.OnResult(t+fr.Airtime, fr)
		bits += fr.Goodput(link.MPDUBytes)
		mcsWeighted += float64(m.Index) * fr.Airtime
		res.Frames++
		res.DeliveredMPDUs += fr.Delivered
		t += fr.Airtime
	}
	if t > 0 {
		res.Mbps = bits / t / 1e6
		res.AvgMCSIndex = mcsWeighted / t
	}
	return res
}
