package ratecontrol

import (
	"mobiwlan/internal/mac"
	"mobiwlan/internal/phy"
	"mobiwlan/internal/stats"
	"mobiwlan/internal/traceio"
)

// RunReplay drives a rate-control adapter against a recorded PHY trace —
// the paper's §4.3 trace-based emulation: every scheme is evaluated
// against *identical* channel conditions, which a live simulation cannot
// guarantee once schemes diverge in timing. Frames of nMPDU subframes are
// transmitted back-to-back; each subframe's delivery is drawn from the PER
// at the trace's effective SNR for the frame's start time. Loss draws are
// deterministic in (seed, frame index, subframe index), so two adapters
// choosing the same rate at the same time see the same losses.
func RunReplay(rp *traceio.Replay, ad Adapter, lc LinkConfig, nMPDU int, duration float64, seed uint64) RunResult {
	if nMPDU < 1 {
		nMPDU = 1
	}
	timing := phy.DefaultTiming()
	var res RunResult
	var bits, mcsWeighted float64
	t := 0.0
	frameIdx := uint64(0)
	for t < duration {
		m := ad.SelectRate(t)
		rec := rp.At(t)
		csiMat, err := rec.Matrix()
		effSNR := rec.SNRdB
		if err == nil && csiMat != nil {
			effSNR = phy.EffectiveSNRdB(csiMat, rec.SNRdB)
		}
		per := phy.PER(m, effSNR, lc.MPDUBytes)
		delivered := 0
		for k := 0; k < nMPDU; k++ {
			// Deterministic per-(frame,subframe) draw shared across
			// adapters.
			draw := stats.NewRNG(seed).Split(frameIdx<<16 | uint64(k)).Float64()
			if draw >= per {
				delivered++
			}
		}
		air := phy.ExchangeAirtime(timing, m, lc.Width, lc.SGI, nMPDU*lc.MPDUBytes, nMPDU)
		fr := mac.FrameResult{
			Start:     t,
			MCS:       m,
			NMPDU:     nMPDU,
			Delivered: delivered,
			Airtime:   air,
			BlockAck:  delivered > 0,
			EffSNRdB:  effSNR,
			CSI:       csiMat,
		}
		ad.OnResult(t+air, fr)
		bits += fr.Goodput(lc.MPDUBytes)
		mcsWeighted += float64(m.Index) * air
		res.Frames++
		res.DeliveredMPDUs += delivered
		t += air
		frameIdx++
	}
	if t > 0 {
		res.Mbps = bits / t / 1e6
		res.AvgMCSIndex = mcsWeighted / t
	}
	return res
}
