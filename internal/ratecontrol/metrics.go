package ratecontrol

import (
	"mobiwlan/internal/core"
	"mobiwlan/internal/obs"
)

// Metrics counts mobility-driven rate-control knob changes, attributed
// to the state being applied (the paper's Table 2 rows). Handles are
// atomic, so one Metrics may be shared across concurrent trial
// adapters; a nil *Metrics disables everything.
type Metrics struct {
	changes *obs.Counter
	toState map[core.State]*obs.Counter
}

// NewMetrics creates the rate-control metric handles on reg. A nil
// registry yields a nil (fully disabled) Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		changes: reg.Counter("ratecontrol.knob-changes"),
		toState: make(map[core.State]*obs.Counter, int(core.StateMacroOrbit)+1),
	}
	for s := core.StateUnknown; s <= core.StateMacroOrbit; s++ {
		m.toState[s] = reg.Counter("ratecontrol.knob-changes." + core.StateLabel(s))
	}
	return m
}

func (m *Metrics) observeChange(to core.State) {
	if m == nil {
		return
	}
	m.changes.Inc()
	m.toState[to].Inc() // unmapped states → nil handle → no-op
}
