module mobiwlan

go 1.22
