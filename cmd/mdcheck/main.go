// Command mdcheck validates the repo's markdown cross-references: every
// relative link must point at an existing file, and every anchor
// (#fragment, in-page or cross-file) must match a heading slug of the
// target document. External http(s)/mailto links are not fetched — the
// checker is offline and deterministic, meant as a CI gate over
// README.md, DESIGN.md, EXPERIMENTS.md, docs/OPERATIONS.md and friends.
//
// Usage:
//
//	mdcheck FILE.md...
//
// Findings print as file:line: message, one per line; the exit status is
// non-zero when any finding exists. Heading slugs follow the GitHub
// flavor (lowercase, punctuation stripped, spaces to hyphens, -N
// suffixes for duplicates), and fenced code blocks plus inline code
// spans are ignored so example links cannot produce false findings.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

//mobilint:stdout mdcheck reports doc-link findings on stdout for CI logs
func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md...")
		os.Exit(2)
	}
	var findings []string
	for _, path := range os.Args[1:] {
		fs, err := checkFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken reference(s)\n", len(findings))
		os.Exit(1)
	}
}

// link is one markdown link occurrence.
type link struct {
	line   int
	target string
}

var (
	// inlineLink matches [text](target) including image links; the text
	// part is non-greedy and the target stops at the first unbalanced ')'.
	inlineLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)`)
	// codeSpan matches `inline code`; replaced before link extraction.
	codeSpan = regexp.MustCompile("`[^`]*`")
	// headingLine matches an ATX heading and captures its text.
	headingLine = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)
	// slugStrip removes everything GitHub drops from a heading slug.
	slugStrip = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
)

// stripFences blanks out fenced code blocks, preserving line count so
// finding positions stay correct.
func stripFences(lines []string) []string {
	out := make([]string, len(lines))
	inFence := false
	fence := ""
	for i, l := range lines {
		trimmed := strings.TrimSpace(l)
		if !inFence {
			if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
				inFence = true
				fence = trimmed[:3]
				out[i] = ""
				continue
			}
			out[i] = l
		} else {
			if strings.HasPrefix(trimmed, fence) {
				inFence = false
			}
			out[i] = ""
		}
	}
	return out
}

// slugify converts a heading to its GitHub anchor slug (without the -N
// duplicate suffix; the caller adds those).
func slugify(heading string) string {
	// Inline code and links inside headings contribute their text.
	heading = strings.ReplaceAll(heading, "`", "")
	heading = inlineLink.ReplaceAllStringFunc(heading, func(m string) string {
		open := strings.Index(m, "[")
		close := strings.Index(m, "]")
		if open >= 0 && close > open {
			return m[open+1 : close]
		}
		return m
	})
	s := strings.ToLower(strings.TrimSpace(heading))
	s = slugStrip.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// anchorsOf extracts the heading anchor set of a markdown document,
// applying GitHub's -1, -2... duplicate suffixes.
func anchorsOf(lines []string) map[string]bool {
	anchors := map[string]bool{}
	seen := map[string]int{}
	for _, l := range stripFences(lines) {
		m := headingLine.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors
}

// linksOf extracts all inline links outside code, with line numbers.
func linksOf(lines []string) []link {
	var out []link
	for i, l := range stripFences(lines) {
		l = codeSpan.ReplaceAllString(l, "")
		for _, m := range inlineLink.FindAllStringSubmatch(l, -1) {
			out = append(out, link{line: i + 1, target: m[1]})
		}
	}
	return out
}

// external reports whether target needs a network to verify.
func external(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}

// checkFile validates every relative link and anchor in one document.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	selfAnchors := anchorsOf(lines)
	anchorCache := map[string]map[string]bool{}

	var findings []string
	report := func(line int, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s:%d: %s", path, line, fmt.Sprintf(format, args...)))
	}
	for _, lk := range linksOf(lines) {
		t := lk.target
		if external(t) {
			continue
		}
		if frag, ok := strings.CutPrefix(t, "#"); ok {
			if !selfAnchors[frag] {
				report(lk.line, "broken anchor #%s (no matching heading in %s)", frag, filepath.Base(path))
			}
			continue
		}
		file, frag, _ := strings.Cut(t, "#")
		dest := filepath.Join(filepath.Dir(path), filepath.FromSlash(file))
		info, err := os.Stat(dest)
		if err != nil {
			report(lk.line, "broken link %s (no such file)", t)
			continue
		}
		if frag == "" {
			continue
		}
		if info.IsDir() || !strings.HasSuffix(dest, ".md") {
			report(lk.line, "anchor #%s on non-markdown target %s", frag, file)
			continue
		}
		anchors, ok := anchorCache[dest]
		if !ok {
			destData, err := os.ReadFile(dest)
			if err != nil {
				return nil, err
			}
			anchors = anchorsOf(strings.Split(string(destData), "\n"))
			anchorCache[dest] = anchors
		}
		if !anchors[frag] {
			report(lk.line, "broken anchor %s#%s (no matching heading)", file, frag)
		}
	}
	sort.Strings(findings)
	return findings, nil
}
