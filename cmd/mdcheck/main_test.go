package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := []struct{ heading, want string }{
		{"Observability", "observability"},
		{"9. Observability", "9-observability"},
		{"Metric & event naming", "metric--event-naming"},
		{"The `obs.Scope` type", "the-obsscope-type"},
		{"jobs=1 vs jobs=N", "jobs1-vs-jobsn"},
		{"Known deviations / limitations", "known-deviations--limitations"},
		{"With [a link](DESIGN.md) inside", "with-a-link-inside"},
	}
	for _, c := range cases {
		if got := slugify(c.heading); got != c.want {
			t.Errorf("slugify(%q) = %q, want %q", c.heading, got, c.want)
		}
	}
}

func TestAnchorsDuplicates(t *testing.T) {
	lines := strings.Split("# Setup\n## Setup\ntext\n## Setup", "\n")
	a := anchorsOf(lines)
	for _, want := range []string{"setup", "setup-1", "setup-2"} {
		if !a[want] {
			t.Errorf("missing anchor %q in %v", want, a)
		}
	}
}

func TestFencesAndCodeSpansIgnored(t *testing.T) {
	doc := "# Real\n```\n[fake](missing.md)\n# NotAHeading\n```\nsee `[also fake](nope.md)` here\n[ok](#real)\n"
	lines := strings.Split(doc, "\n")
	if a := anchorsOf(lines); a["notaheading"] {
		t.Error("heading inside code fence leaked into anchors")
	}
	links := linksOf(lines)
	if len(links) != 1 || links[0].target != "#real" {
		t.Errorf("links = %+v, want only #real", links)
	}
}

// writeTree lays out a small doc tree and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCheckFileCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":      "# Top\nsee [design](docs/DESIGN.md#goals), [self](#top),\nand [ops](docs/OPS.md).\n",
		"docs/DESIGN.md": "# Goals\nback to [readme](../README.md)\n",
		"docs/OPS.md":    "# Ops\n[external](https://example.com/x#y) is not fetched\n",
	})
	for _, f := range []string{"README.md", "docs/DESIGN.md", "docs/OPS.md"} {
		findings, err := checkFile(filepath.Join(root, filepath.FromSlash(f)))
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Errorf("%s: unexpected findings %v", f, findings)
		}
	}
}

func TestCheckFileBrokenRefs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.md": "# A\n[gone](missing.md)\n[bad anchor](b.md#nope)\n[bad self](#zzz)\n[ok](b.md#b)\n",
		"b.md": "# B\n",
	})
	findings, err := checkFile(filepath.Join(root, "a.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("want 3 findings, got %d: %v", len(findings), findings)
	}
	wantSubstr := []string{"missing.md", "b.md#nope", "#zzz"}
	for _, sub := range wantSubstr {
		found := false
		for _, f := range findings {
			if strings.Contains(f, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentions %q: %v", sub, findings)
		}
	}
	// Findings carry file:line positions.
	for _, f := range findings {
		if !strings.Contains(f, "a.md:") {
			t.Errorf("finding without position: %q", f)
		}
	}
}

// TestRepoDocsAreClean runs the checker over the repo's own documents —
// the same set CI gates — so a broken cross-reference fails locally too.
func TestRepoDocsAreClean(t *testing.T) {
	docs := []string{
		"../../README.md",
		"../../DESIGN.md",
		"../../EXPERIMENTS.md",
		"../../ROADMAP.md",
		"../../docs/OPERATIONS.md",
		"../../docs/SCENARIOS.md",
	}
	for _, d := range docs {
		if _, err := os.Stat(d); err != nil {
			t.Fatalf("doc %s missing: %v", d, err)
		}
		findings, err := checkFile(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
