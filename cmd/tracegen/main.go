// Command tracegen captures PHY-layer traces (CSI, RSSI, distance) from
// the channel simulator into JSON Lines, for use with the replay-based
// experiments and external analysis.
//
// Usage:
//
//	tracegen -mode macro -duration 30 -interval 0.05 -seed 7 -o trace.jsonl
//
// With -summarize FILE it instead reads a trace and prints summary
// statistics (the round-trip check for recorded traces).
package main

import (
	"flag"
	"fmt"
	"os"

	"mobiwlan/internal/channel"
	"mobiwlan/internal/csi"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/stats"
	"mobiwlan/internal/traceio"
)

//mobilint:stdout tracegen streams the generated trace to stdout by default
func main() {
	var (
		mode      = flag.String("mode", "macro", "scenario mode: static|env|micro|macro|toward|away")
		duration  = flag.Float64("duration", 30, "trace length in seconds")
		interval  = flag.Float64("interval", 0.05, "sampling interval in seconds")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		out       = flag.String("o", "-", "output file ('-' = stdout)")
		summarize = flag.String("summarize", "", "read and summarize an existing trace instead")
	)
	flag.Parse()

	if *summarize != "" {
		if err := summary(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = *duration
	rng := stats.NewRNG(*seed)
	var scen *mobility.Scenario
	switch *mode {
	case "static":
		scen = mobility.NewScenario(mobility.Static, cfg, rng)
	case "env", "environmental":
		scen = mobility.NewScenario(mobility.Environmental, cfg, rng)
	case "micro":
		scen = mobility.NewScenario(mobility.Micro, cfg, rng)
	case "macro":
		scen = mobility.NewScenario(mobility.Macro, cfg, rng)
	case "toward":
		scen = mobility.NewMacroScenario(mobility.HeadingToward, cfg, rng)
	case "away":
		scen = mobility.NewMacroScenario(mobility.HeadingAway, cfg, rng)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	ch := channel.New(channel.DefaultConfig(), scen, rng.Split(99))
	recs := traceio.Capture(ch, *interval, *duration)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := traceio.Write(w, recs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records (%.0f s at %.0f ms)\n",
		len(recs), *duration, *interval*1000)
}

//mobilint:stdout -summary renders the trace digest on stdout
func summary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := traceio.Read(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("empty trace")
	}
	var rssi, dist, sims []float64
	var prev *csi.Matrix
	for _, r := range recs {
		rssi = append(rssi, r.RSSIdBm)
		dist = append(dist, r.Distance)
		m, err := r.Matrix()
		if err != nil {
			return err
		}
		if prev != nil {
			sims = append(sims, csi.Similarity(prev, m))
		}
		prev = m
	}
	rp := traceio.NewReplay(recs)
	fmt.Printf("records:            %d over %.1f s\n", rp.Len(), rp.Duration())
	fmt.Printf("RSSI:               median %.1f dBm (min %.1f, max %.1f)\n",
		stats.Median(rssi), stats.Min(rssi), stats.Max(rssi))
	fmt.Printf("distance:           median %.1f m (min %.1f, max %.1f)\n",
		stats.Median(dist), stats.Min(dist), stats.Max(dist))
	fmt.Printf("CSI similarity:     median %.3f (5th pct %.3f)\n",
		stats.Median(sims), stats.Percentile(sims, 5))
	return nil
}
