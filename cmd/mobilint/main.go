// Command mobilint is the repo's static-analysis gate: it enforces the
// determinism, concurrency and error-hygiene contracts documented in
// DESIGN.md ("Enforced invariants") on every package in the module.
//
// Usage:
//
//	go run ./cmd/mobilint ./...          # lint the whole module
//	go run ./cmd/mobilint internal/sim   # lint one package
//	go run ./cmd/mobilint -list          # show the checks
//	go run ./cmd/mobilint -checks map-order,time-now ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or analysis error.
// Suppress an individual finding with a justified directive on the
// same line or the line above:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobiwlan/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list registered checks and exit")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mobilint [-list] [-checks c1,c2] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cfg := lint.Config{Dir: ".", Patterns: flag.Args()}
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	findings, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mobilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
