// Command mobilint is the repo's static-analysis gate: it enforces the
// determinism, concurrency, error-hygiene, hot-path allocation,
// RNG-split and stdout-purity contracts documented in DESIGN.md
// ("Enforced invariants") on every package in the module.
//
// Usage:
//
//	go run ./cmd/mobilint ./...            # lint the whole module
//	go run ./cmd/mobilint internal/sim     # lint one package
//	go run ./cmd/mobilint -list            # show the checks
//	go run ./cmd/mobilint -checks map-order,time-now ./...
//	go run ./cmd/mobilint -format json ./...          # CI artifact
//	go run ./cmd/mobilint -format sarif ./...         # PR annotations
//	go run ./cmd/mobilint -baseline lint_baseline.json ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or analysis error.
// Suppress an individual finding with a justified directive on the
// same line or the line above:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mobiwlan/internal/lint"
)

//mobilint:stdout mobilint's findings and listings are its primary output, consumed by CI and terminals
func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable CLI body; exit-code semantics (0 clean, 1
// findings, 2 usage/analysis error) are pinned by main_test.go.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered checks and exit")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all default-enabled checks)")
	format := fs.String("format", "text", "output format: text, json or sarif")
	baseline := fs.String("baseline", "", "JSON baseline file; recorded findings are tolerated, only new ones fail")
	fs.Usage = func() {
		_, _ = fmt.Fprintf(stderr, "usage: mobilint [-list] [-checks c1,c2] [-format text|json|sarif] [-baseline file] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		sorted := append([]*lint.Check(nil), lint.Checks...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, c := range sorted {
			def := "off"
			if c.Default {
				def = "on"
			}
			_, _ = fmt.Fprintf(stdout, "%-16s %-4s %s\n", c.Name, def, c.Doc)
		}
		return 0
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		_, _ = fmt.Fprintf(stderr, "mobilint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	cfg := lint.Config{Dir: ".", Patterns: fs.Args()}
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	findings, err := lint.Run(cfg)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "mobilint:", err)
		return 2
	}

	if *baseline != "" {
		bl, err := lint.LoadBaseline(*baseline)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "mobilint:", err)
			return 2
		}
		var absorbed int
		findings, absorbed = bl.Apply(findings)
		if absorbed > 0 {
			_, _ = fmt.Fprintf(stderr, "mobilint: %d baselined finding(s) ignored\n", absorbed)
		}
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(stdout, findings); err != nil {
			_, _ = fmt.Fprintln(stderr, "mobilint:", err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, findings); err != nil {
			_, _ = fmt.Fprintln(stderr, "mobilint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			_, _ = fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		_, _ = fmt.Fprintf(stderr, "mobilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
