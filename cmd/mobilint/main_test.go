package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const (
	cleanFixture = "../../internal/lint/testdata/src/clean"
	dirtyFixture = "../../internal/lint/testdata/src/errs"
)

// runCLI invokes the CLI body and captures both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errBuf strings.Builder
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestExitCodes pins the 0/1/2 contract CI scripts rely on.
func TestExitCodes(t *testing.T) {
	if code, _, _ := runCLI(cleanFixture); code != 0 {
		t.Errorf("clean fixture: want exit 0, got %d", code)
	}
	code, out, errOut := runCLI(dirtyFixture)
	if code != 1 {
		t.Errorf("dirty fixture: want exit 1, got %d", code)
	}
	if !strings.Contains(out, ".go:") || !strings.Contains(errOut, "finding(s)") {
		t.Errorf("dirty fixture: findings on stdout and count on stderr expected; stdout=%q stderr=%q", out, errOut)
	}
	if code, _, _ := runCLI("-checks", "no-such-check", cleanFixture); code != 2 {
		t.Errorf("unknown check: want exit 2, got %d", code)
	}
	if code, _, _ := runCLI("-format", "xml", cleanFixture); code != 2 {
		t.Errorf("unknown format: want exit 2, got %d", code)
	}
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: want exit 2, got %d", code)
	}
}

// TestListOutput checks -list is sorted and carries a description and
// the default-enabled marker for every check.
func TestListOutput(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("-list: want exit 0, got %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("-list: suspiciously few checks: %d", len(lines))
	}
	var names []string
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Errorf("-list line %q lacks name, on/off flag and description", line)
			continue
		}
		names = append(names, fields[0])
		if fields[1] != "on" && fields[1] != "off" {
			t.Errorf("-list line %q: second column %q is not on/off", line, fields[1])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output not sorted: %v", names)
	}
	for _, want := range []string{"hotpath-alloc", "rng-split", "stdout-purity"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("-list is missing %s", want)
		}
	}
}

// jsonReport mirrors the -format json envelope.
type jsonReport struct {
	Version  int `json:"version"`
	Count    int `json:"count"`
	Findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	} `json:"findings"`
}

// TestJSONFormat checks the machine-readable report parses and agrees
// with the exit code.
func TestJSONFormat(t *testing.T) {
	code, out, _ := runCLI("-format", "json", dirtyFixture)
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-format json output does not parse: %v\n%s", err, out)
	}
	if rep.Version != 1 || rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Fatalf("inconsistent report: version=%d count=%d findings=%d", rep.Version, rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line <= 0 || f.Check == "" || f.Message == "" {
			t.Errorf("incomplete finding %+v", f)
		}
	}
}

// TestSARIFFormat sanity-checks the SARIF envelope.
func TestSARIFFormat(t *testing.T) {
	code, out, _ := runCLI("-format", "sarif", dirtyFixture)
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-format sarif output does not parse: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("sarif version = %v, want 2.1.0", doc["version"])
	}
}

// TestBaselineAbsorbsFindings pins the ratchet workflow: recording
// today's findings in a baseline turns exit 1 into exit 0, and an
// empty baseline changes nothing.
func TestBaselineAbsorbsFindings(t *testing.T) {
	_, out, _ := runCLI("-format", "json", dirtyFixture)
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}

	type blFinding struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Message string `json:"message"`
	}
	bl := struct {
		Version  int         `json:"version"`
		Findings []blFinding `json:"findings"`
	}{Version: 1}
	for _, f := range rep.Findings {
		bl.Findings = append(bl.Findings, blFinding{f.Check, f.File, f.Message})
	}
	data, err := json.Marshal(bl)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, errOut := runCLI("-baseline", path, dirtyFixture)
	if code != 0 {
		t.Errorf("fully baselined run: want exit 0, got %d (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "baselined") {
		t.Errorf("stderr should report absorbed findings, got %q", errOut)
	}

	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"version":1,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI("-baseline", empty, dirtyFixture); code != 1 {
		t.Errorf("empty baseline must not absorb anything: want exit 1, got %d", code)
	}
	if code, _, _ := runCLI("-baseline", filepath.Join(t.TempDir(), "missing.json"), dirtyFixture); code != 2 {
		t.Errorf("unreadable baseline: want exit 2, got %d", code)
	}
}
