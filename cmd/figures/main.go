// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures [-id fig2b,table1|all] [-seed N] [-scale S] [-jobs N] [-csv DIR] [-list]
//
// Each experiment prints its rendered table and notes to stdout; -csv
// additionally writes one CSV file per figure series for plotting.
//
// -jobs N bounds the worker pool: trials within an experiment fan out
// across up to N workers, and independent experiment IDs run concurrently
// under the same bound. Output is deterministic — the experiments derive
// all per-trial randomness by splitting the root RNG at the trial index,
// so stdout is byte-identical for every value of N (per-experiment timing
// goes to stderr, which is the only run-dependent output).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobiwlan/internal/experiments"
	"mobiwlan/internal/parallel"
)

func main() {
	var (
		idFlag   = flag.String("id", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Uint64("seed", 2014, "root RNG seed")
		scale    = flag.Float64("scale", 1, "workload scale (1 = published defaults)")
		jobs     = flag.Int("jobs", parallel.DefaultJobs(), "max concurrent workers (trials and experiments)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV series into")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *idFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*idFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		runners[i] = runner
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Jobs: *jobs}

	// Independent experiment IDs run concurrently under the same worker
	// bound; results are collected and printed in request order so stdout
	// is identical to a serial run.
	type timed struct {
		res     experiments.Result
		elapsed float64
	}
	results := parallel.RunTrials(len(ids), *jobs, func(i int) timed {
		start := time.Now()
		res := runners[i](cfg)
		return timed{res: res, elapsed: time.Since(start).Seconds()}
	})

	for _, tr := range results {
		fmt.Println(tr.res.Text)
		for _, n := range tr.res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
		fmt.Fprintf(os.Stderr, "(%s regenerated in %.1fs)\n", tr.res.ID, tr.elapsed)
		if *csvDir != "" && len(tr.res.Series) > 0 {
			if err := writeCSV(*csvDir, tr.res); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,value\n", res.XLabel)
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return os.WriteFile(filepath.Join(dir, res.ID+".csv"), []byte(b.String()), 0o644)
}
