// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures [-id fig2b,table1|all] [-seed N] [-scale S] [-jobs N] [-csv DIR] [-list]
//	        [-metrics] [-metrics-json FILE] [-metrics-addr ADDR] [-trace FILE]
//
// Each experiment prints its rendered table and notes to stdout; -csv
// additionally writes one CSV file per figure series for plotting.
//
// -jobs N bounds the worker pool: trials within an experiment fan out
// across up to N workers, and independent experiment IDs run concurrently
// under the same bound. Output is deterministic — the experiments derive
// all per-trial randomness by splitting the root RNG at the trial index,
// so stdout is byte-identical for every value of N (per-experiment timing
// goes to stderr, which is the only run-dependent output).
//
// Telemetry (docs/OPERATIONS.md): -metrics dumps the metric registry as
// text to stderr at exit, -metrics-json writes the same registry as JSON
// to a file, -metrics-addr serves /metrics, /metrics.json and
// /debug/pprof/ over HTTP while the run is in flight, and -trace writes
// the merged per-trial event trace as JSONL. All telemetry goes to stderr
// or files, never stdout, and every dump is byte-identical for any -jobs
// value (DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobiwlan/internal/experiments"
	"mobiwlan/internal/obs"
	"mobiwlan/internal/parallel"
)

// traceRingCap bounds each trial's in-memory event ring when -trace is
// set; overflow counts are reported on stderr rather than growing the
// heap mid-run.
const traceRingCap = 4096

//mobilint:stdout figures prints the generated artifact paths for the paper build
func main() {
	var (
		idFlag   = flag.String("id", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Uint64("seed", 2014, "root RNG seed")
		scale    = flag.Float64("scale", 1, "workload scale (1 = published defaults)")
		jobs     = flag.Int("jobs", parallel.DefaultJobs(), "max concurrent workers (trials and experiments)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV series into")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")

		metrics     = flag.Bool("metrics", false, "dump the metric registry as text to stderr at exit")
		metricsJSON = flag.String("metrics-json", "", "write the metric registry as JSON to this file at exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address during the run")
		traceOut    = flag.String("trace", "", "write the merged per-trial event trace as JSONL to this file at exit")
	)
	flag.Parse()

	if *listOnly {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *idFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*idFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		runners[i] = runner
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Jobs: *jobs}

	// Telemetry scope: shared by every experiment of the run. The trace
	// ring only needs memory when -trace asked for the events.
	var scope *obs.Scope
	if *metrics || *metricsJSON != "" || *metricsAddr != "" || *traceOut != "" {
		cap := 0
		if *traceOut != "" {
			cap = traceRingCap
		}
		scope = obs.NewScope(cap)
		cfg.Obs = scope
	}
	if *metricsAddr != "" {
		addr, _, err := obs.Serve(*metricsAddr, scope.Registry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: serving metrics on http://%s/metrics\n", addr)
	}

	// Independent experiment IDs run concurrently under the same worker
	// bound; results are collected and printed in request order so stdout
	// is identical to a serial run.
	type timed struct {
		res     experiments.Result
		elapsed float64
	}
	results := parallel.RunTrials(len(ids), *jobs, func(i int) timed {
		start := time.Now()
		res := runners[i](cfg)
		return timed{res: res, elapsed: time.Since(start).Seconds()}
	})

	for _, tr := range results {
		fmt.Println(tr.res.Text)
		for _, n := range tr.res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
		fmt.Fprintf(os.Stderr, "(%s regenerated in %.1fs)\n", tr.res.ID, tr.elapsed)
		if *csvDir != "" && len(tr.res.Series) > 0 {
			if err := writeCSV(*csvDir, tr.res); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if scope != nil {
		if err := dumpTelemetry(scope, *metrics, *metricsJSON, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpTelemetry writes the end-of-run metric and trace dumps. Everything
// lands on stderr or in files so stdout stays byte-identical with
// telemetry enabled.
func dumpTelemetry(scope *obs.Scope, text bool, jsonPath, tracePath string) error {
	if text {
		if err := scope.Reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeToFile(jsonPath, scope.Reg.WriteJSON); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeToFile(tracePath, scope.Trials.WriteJSONL); err != nil {
			return err
		}
		if d := scope.Trials.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr,
				"figures: trace rings dropped %d events (oldest are overwritten once a trial exceeds %d events)\n",
				d, traceRingCap)
		}
	}
	return nil
}

// writeToFile creates path and streams write into it.
func writeToFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,value\n", res.XLabel)
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return os.WriteFile(filepath.Join(dir, res.ID+".csv"), []byte(b.String()), 0o644)
}
