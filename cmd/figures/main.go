// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures [-id fig2b,table1|all] [-seed N] [-scale S] [-csv DIR] [-list]
//
// Each experiment prints its rendered table and notes to stdout; -csv
// additionally writes one CSV file per figure series for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobiwlan/internal/experiments"
)

func main() {
	var (
		idFlag   = flag.String("id", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Uint64("seed", 2014, "root RNG seed")
		scale    = flag.Float64("scale", 1, "workload scale (1 = published defaults)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV series into")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *idFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*idFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	for _, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := runner(cfg)
		fmt.Println(res.Text)
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", res.ID, time.Since(start).Seconds())
		if *csvDir != "" && len(res.Series) > 0 {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "series,%s,value\n", res.XLabel)
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(f, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return nil
}
