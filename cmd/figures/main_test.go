package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobiwlan/internal/experiments"
	"mobiwlan/internal/stats"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	res := experiments.Result{
		ID:     "figX",
		XLabel: "x",
		Series: []stats.Series{
			{Name: "a", Points: []stats.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
		},
	}
	if err := writeCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "figX.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	if !strings.HasPrefix(got, "series,x,value\n") {
		t.Fatalf("header wrong:\n%s", got)
	}
	if !strings.Contains(got, "a,1,2\n") || !strings.Contains(got, "a,3,4\n") {
		t.Fatalf("rows wrong:\n%s", got)
	}
}
