package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobiwlan/internal/obs"
)

// traceRingCap bounds the per-trial in-memory event ring when -trace is
// set; once a trial exceeds it the oldest events are overwritten and the
// drop count is reported on stderr.
const traceRingCap = 4096

// obsFlags wires the shared telemetry flags (docs/OPERATIONS.md) into a
// subcommand: -metrics, -metrics-json, -metrics-addr and -trace. Scope
// returns nil until one of them is set, so un-instrumented runs pay
// nothing; all dumps go to stderr or files, never stdout.
type obsFlags struct {
	metrics     *bool
	metricsJSON *string
	metricsAddr *string
	trace       *string

	scope *obs.Scope
}

// addObsFlags registers the telemetry flags on fs. Call before parsing.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	o.metrics = fs.Bool("metrics", false, "dump the metric registry as text to stderr at exit")
	o.metricsJSON = fs.String("metrics-json", "", "write the metric registry as JSON to this file at exit")
	o.metricsAddr = fs.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address during the run")
	o.trace = fs.String("trace", "", "write the event trace as JSONL to this file at exit")
	return o
}

// Scope returns the run's telemetry scope, creating it (and the optional
// metrics listener) on first use; nil when no telemetry flag was given.
func (o *obsFlags) Scope() *obs.Scope {
	if o.scope != nil {
		return o.scope
	}
	if !*o.metrics && *o.metricsJSON == "" && *o.metricsAddr == "" && *o.trace == "" {
		return nil
	}
	cap := 0
	if *o.trace != "" {
		cap = traceRingCap
	}
	o.scope = obs.NewScope(cap)
	if *o.metricsAddr != "" {
		addr, _, err := obs.Serve(*o.metricsAddr, o.scope.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobisim: metrics listener:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mobisim: serving metrics on http://%s/metrics\n", addr)
	}
	return o.scope
}

// Finish writes the end-of-run dumps. Call once after the subcommand's
// simulation completes; a no-op when no telemetry flag was given.
func (o *obsFlags) Finish() {
	if o.scope == nil {
		return
	}
	if *o.metrics {
		if err := o.scope.Reg.WriteText(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim: metrics dump:", err)
			os.Exit(1)
		}
	}
	if *o.metricsJSON != "" {
		if err := writeToFile(*o.metricsJSON, o.scope.Reg.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim: metrics dump:", err)
			os.Exit(1)
		}
	}
	if *o.trace != "" {
		if err := writeToFile(*o.trace, o.scope.Trials.WriteJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim: trace dump:", err)
			os.Exit(1)
		}
		if d := o.scope.Trials.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr,
				"mobisim: trace rings dropped %d events (oldest are overwritten past %d events per trial)\n",
				d, traceRingCap)
		}
	}
}

// writeToFile creates path and streams write into it.
func writeToFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
