// Command mobisim runs individual pieces of the mobility-aware WLAN
// simulator from the command line.
//
// Subcommands:
//
//	classify  - run the PHY-layer mobility classifier over a scenario
//	link      - closed-loop single-link run (rate control + aggregation)
//	wlan      - walk through the 6-AP floor with the full stack
//	fleet     - N independent clients against the shared AP plan
//	roam      - roaming-policy comparison on one walk
//	subf      - single-user beamforming with a chosen feedback period
//
// As a convenience, fleet flags may be passed directly ("mobisim
// -clients 64" is "mobisim fleet -clients 64").
//
// Every subcommand takes -seed and -duration; see -h of each for more.
// All subcommands except sched also take the shared telemetry flags
// (-metrics, -metrics-json, -metrics-addr, -trace) described in
// docs/OPERATIONS.md; dumps go to stderr or files, never stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobiwlan/internal/aggregation"
	"mobiwlan/internal/beamforming"
	"mobiwlan/internal/channel"
	"mobiwlan/internal/core"
	"mobiwlan/internal/geom"
	"mobiwlan/internal/mac"
	"mobiwlan/internal/mobility"
	"mobiwlan/internal/ratecontrol"
	"mobiwlan/internal/roaming"
	"mobiwlan/internal/scenario"
	"mobiwlan/internal/sched"
	"mobiwlan/internal/sim"
	"mobiwlan/internal/stats"
	"mobiwlan/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if strings.HasPrefix(cmd, "-") {
		// Bare flags select the fleet workload: mobisim -clients 64.
		cmdFleet(os.Args[1:])
		return
	}
	switch cmd {
	case "classify":
		cmdClassify(args)
	case "link":
		cmdLink(args)
	case "wlan":
		cmdWLAN(args)
	case "fleet":
		cmdFleet(args)
	case "roam":
		cmdRoam(args)
	case "subf":
		cmdSUBF(args)
	case "mumimo":
		cmdMUMIMO(args)
	case "sched":
		cmdSched(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mobisim <classify|link|wlan|fleet|roam|subf|mumimo|sched> [flags]")
}

// cmdFleet runs the multi-client scale harness: N independent clients
// with round-robin mobility modes against the shared AP plan. Per-client
// lines are printed in client order so runs with different -jobs values
// can be diffed byte-for-byte.
//
//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	clients := fs.Int("clients", 16, "number of independent clients")
	scenFile := fs.String("scenario", "", "declarative scenario file (JSON, see docs/SCENARIOS.md); overrides -clients, -duration, and -motion-aware")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = one per CPU)")
	duration := fs.Float64("duration", 10, "seconds per client")
	seed := fs.Uint64("seed", 1, "RNG seed")
	aware := fs.Bool("motion-aware", true, "use the mobility-aware stack")
	quiet := fs.Bool("quiet", false, "suppress per-client lines")
	contend := fs.Bool("contend", false, "share the medium: CSMA/CA contention + OBSS interference")
	aps := fs.Int("aps", 0, "AP count for the contended grid plan (0 = the 6-AP default floor)")
	channels := fs.Int("channels", 0, "channel count for the contended plan (0 = 3)")
	csRange := fs.Float64("cs-range", 0, "AP-to-AP carrier-sense range in meters (0 = 25)")
	maxAPs := fs.Int("max-aps", 0, "APs each contended client simulates links to (0 = all)")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	opt := sim.FleetOptions{
		Clients:     *clients,
		Jobs:        *jobs,
		MotionAware: *aware,
		Duration:    *duration,
		Obs:         ofl.Scope(),
		Contend:     *contend,
		APs:         *aps,
		NumChannels: *channels,
		CSRangeM:    *csRange,
		MaxAPs:      *maxAPs,
	}
	defer ofl.Finish()
	var res sim.FleetResult
	if *scenFile != "" {
		spec, err := scenario.ParseFile(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err = sim.RunScenarioFleet(spec, opt, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !*quiet {
			for i, c := range res.PerClient {
				fmt.Printf("client %3d  %-14s %-13s %6.2f Mbps  %d handoffs  %d scans\n",
					c.Client, res.Names[i], c.Mode, c.Mbps, c.Handoffs, c.Scans)
			}
		}
		fmt.Printf("fleet: scenario %s, %d clients x %.0f s, total %.1f Mbps, mean %.2f Mbps, %d handoffs, %d scans\n",
			spec.Name, len(res.PerClient), spec.DurationS, res.TotalMbps, res.MeanMbps, res.Handoffs, res.Scans)
	} else {
		res = sim.RunWLANFleet(opt, *seed)
		if !*quiet {
			for _, c := range res.PerClient {
				fmt.Printf("client %3d  %-13s %6.2f Mbps  %d handoffs  %d scans\n",
					c.Client, c.Mode, c.Mbps, c.Handoffs, c.Scans)
			}
		}
		fmt.Printf("fleet: %d clients x %.0f s, total %.1f Mbps, mean %.2f Mbps, %d handoffs, %d scans\n",
			*clients, *duration, res.TotalMbps, res.MeanMbps, res.Handoffs, res.Scans)
	}
	if cs := res.Contend; cs != nil {
		if !*quiet {
			for b, s := range cs.BSS {
				fmt.Printf("bss %3d  ch %d dom %2d  %6d frames  %5d collisions  %6d deferrals  %7.3f s airtime\n",
					b, s.Channel, s.Domain, s.Frames, s.Collisions, s.Deferrals, s.AirtimeS)
			}
		}
		m := cs.MPDU
		fmt.Printf("medium: %d domains, mpdus %d offered = %d delivered + %d per + %d collision + %d obss\n",
			len(cs.Domains), m.Offered, m.Delivered, m.PERLost, m.CollisionLost, m.OBSSLost)
	}
}

// parseArgs parses args into fs. Every subcommand FlagSet uses
// flag.ExitOnError, so Parse exits on bad input and its error result
// is always nil.
func parseArgs(fs *flag.FlagSet, args []string) {
	_ = fs.Parse(args)
}

// parseMode maps a CLI mode name to scenario construction inputs.
func buildScenario(mode string, duration float64, seed uint64) (*mobility.Scenario, error) {
	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = duration
	rng := stats.NewRNG(seed)
	switch mode {
	case "static":
		return mobility.NewScenario(mobility.Static, cfg, rng), nil
	case "environmental", "env":
		return mobility.NewScenario(mobility.Environmental, cfg, rng), nil
	case "micro":
		return mobility.NewScenario(mobility.Micro, cfg, rng), nil
	case "macro":
		return mobility.NewScenario(mobility.Macro, cfg, rng), nil
	case "toward":
		return mobility.NewMacroScenario(mobility.HeadingToward, cfg, rng), nil
	case "away":
		return mobility.NewMacroScenario(mobility.HeadingAway, cfg, rng), nil
	case "circle":
		return mobility.NewCircleScenario(cfg, rng), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (static|env|micro|macro|toward|away|circle)", mode)
	}
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	mode := fs.String("mode", "macro", "ground-truth scenario mode")
	duration := fs.Float64("duration", 30, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	scen, err := buildScenario(*mode, *duration, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		os.Exit(2)
	}
	pc := core.DefaultPipelineConfig()
	pc.Obs = ofl.Scope()
	decisions := core.RunScenario(scen, pc, *seed+1)
	defer ofl.Finish()
	var last core.State = -1
	for _, d := range decisions {
		if d.State != last {
			fmt.Printf("t=%6.2fs  state=%-13s truth=%s\n", d.Time, d.State, d.Truth)
			last = d.State
		}
	}
	fmt.Printf("\naccuracy (after 6 s warmup): %.1f%%\n", 100*core.Accuracy(decisions, 6))
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdLink(args []string) {
	fs := flag.NewFlagSet("link", flag.ExitOnError)
	mode := fs.String("mode", "macro", "ground-truth scenario mode")
	duration := fs.Float64("duration", 20, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	aware := fs.Bool("motion-aware", false, "use the mobility-aware stack")
	traffic := fs.String("traffic", "udp", "udp|tcp|cbr:<Mbps>")
	power := fs.Float64("power", channel.DefaultConfig().TxPowerDBm, "AP transmit power (dBm)")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	scen, err := buildScenario(*mode, *duration, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		os.Exit(2)
	}
	opt := sim.DefaultLinkOptions()
	if *aware {
		opt = sim.MotionAwareLinkOptions()
	}
	opt.Channel.TxPowerDBm = *power
	opt.Obs = ofl.Scope()
	defer ofl.Finish()
	switch {
	case *traffic == "udp":
		opt.Source = transport.Saturated{}
	case *traffic == "tcp":
		opt.Source = transport.NewTCPReno(1500)
	default:
		var rate float64
		if _, err := fmt.Sscanf(*traffic, "cbr:%f", &rate); err != nil {
			fmt.Fprintln(os.Stderr, "mobisim: bad -traffic; want udp|tcp|cbr:<Mbps>")
			os.Exit(2)
		}
		opt.Source = &transport.CBR{RateMbps: rate, MPDUBytes: 1500}
	}
	res := sim.RunLink(scen, opt, *seed+7)
	fmt.Printf("throughput: %.1f Mbps over %.0f s (%d frames, %d MPDUs delivered)\n",
		res.Mbps, *duration, res.Frames, res.DeliveredMPDUs)
	if *aware {
		fmt.Println("time per classifier state:")
		for _, s := range []core.State{core.StateStatic, core.StateEnvironmental,
			core.StateMicro, core.StateMacroAway, core.StateMacroToward} {
			if d := res.StateDurations[s]; d > 0.05 {
				fmt.Printf("  %-13s %.1f s\n", s, d)
			}
		}
	}
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdWLAN(args []string) {
	fs := flag.NewFlagSet("wlan", flag.ExitOnError)
	duration := fs.Float64("duration", 30, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = *duration
	scen := mobility.NewScenario(mobility.Static, cfg, stats.NewRNG(*seed))
	scen.Label = mobility.Macro
	scen.Client = mobility.WaypointWalk{
		Path:     crossFloorPath(),
		Speed:    1.4,
		PingPong: true,
	}
	optDef := sim.DefaultWLANOptions(false)
	optDef.Obs, optDef.Trial = ofl.Scope(), 0
	optAware := sim.DefaultWLANOptions(true)
	optAware.Obs, optAware.Trial = ofl.Scope(), 1
	defer ofl.Finish()
	def := sim.RunWLAN(scen, optDef, *seed+3)
	aware := sim.RunWLAN(scen, optAware, *seed+3)
	fmt.Printf("802.11n default: %.1f Mbps (%d handoffs, %d scans)\n", def.Mbps, def.Handoffs, def.Scans)
	fmt.Printf("motion-aware:    %.1f Mbps (%d handoffs, %d scans)\n", aware.Mbps, aware.Handoffs, aware.Scans)
	if def.Mbps > 0 {
		fmt.Printf("gain: %+.0f%%\n", 100*(aware.Mbps/def.Mbps-1))
	}
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdRoam(args []string) {
	fs := flag.NewFlagSet("roam", flag.ExitOnError)
	duration := fs.Float64("duration", 40, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	cfg := mobility.DefaultSceneConfig()
	cfg.Duration = *duration
	scen := mobility.NewScenario(mobility.Static, cfg, stats.NewRNG(*seed))
	scen.Label = mobility.Macro
	scen.Client = mobility.WaypointWalk{Path: crossFloorPath(), Speed: 1.4, PingPong: true}

	runner := roaming.NewRunner(roaming.DefaultPlan())
	runner.Obs = ofl.Scope()
	defer ofl.Finish()
	for pi, pol := range []roaming.Policy{
		roaming.NewDefault80211(), roaming.NewSensorHint(), roaming.NewMobilityAware(),
	} {
		runner.Trial = pi
		res := runner.Run(scen, pol, *seed+9)
		fmt.Printf("%-16s %.1f Mbps (%d handoffs, %d scans)\n",
			pol.Name(), res.Mbps, res.Handoffs, res.Scans)
	}
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdSUBF(args []string) {
	fs := flag.NewFlagSet("subf", flag.ExitOnError)
	mode := fs.String("mode", "macro", "ground-truth scenario mode")
	duration := fs.Float64("duration", 10, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	period := fs.Float64("period", 20, "CSI feedback period (ms); 0 = mobility-adaptive")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	scen, err := buildScenario(*mode, *duration+6, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		os.Exit(2)
	}
	chCfg := channel.DefaultConfig()
	chCfg.TxPowerDBm = -8 // cell edge, where beamforming matters
	ch := channel.New(chCfg, scen, stats.NewRNG(*seed+2))
	var sched beamforming.FeedbackScheduler = beamforming.FixedFeedback{T: *period / 1000}
	var stateAt func(float64) core.State
	if *period == 0 {
		sched = beamforming.Adaptive{}
		decisions := core.RunScenario(scen, core.DefaultPipelineConfig(), *seed+4)
		stateAt = func(t float64) core.State {
			for i := len(decisions) - 1; i >= 0; i-- {
				if decisions[i].Time <= t {
					return decisions[i].State
				}
			}
			return core.StateUnknown
		}
	}
	suCfg := beamforming.DefaultSUConfig()
	suCfg.Obs = ofl.Scope()
	defer ofl.Finish()
	res := beamforming.RunSU(ch, sched, stateAt, suCfg, *duration)
	fmt.Printf("SU-BF (%s): %.1f Mbps, %d soundings, %.1f%% airtime on feedback\n",
		sched.Name(), res.Mbps, res.Soundings, 100*res.FeedbackFraction)
}

// crossFloorPath is the Fig. 13(a)-style walking trajectory past several
// APs of the default plan.
func crossFloorPath() geom.Path {
	return geom.NewPath(geom.Pt(4, 7), geom.Pt(46, 7), geom.Pt(46, 23), geom.Pt(4, 23))
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdMUMIMO(args []string) {
	fs := flag.NewFlagSet("mumimo", flag.ExitOnError)
	duration := fs.Float64("duration", 8, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	period := fs.Float64("period", 20, "common CSI feedback period (ms); 0 = per-client adaptive")
	ofl := addObsFlags(fs)
	parseArgs(fs, args)

	modes := []mobility.Mode{mobility.Environmental, mobility.Micro, mobility.Macro}
	users := make([]beamforming.MUUser, 3)
	for i, mode := range modes {
		rng := stats.NewRNG(*seed + uint64(i)*31)
		mcfg := mobility.DefaultSceneConfig()
		mcfg.Duration = *duration + 8
		mcfg.EnvIntensity = 0.4
		var scen *mobility.Scenario
		if mode == mobility.Macro {
			scen = mobility.NewMacroScenario(mobility.HeadingToward, mcfg, rng)
		} else {
			scen = mobility.NewScenario(mode, mcfg, rng)
		}
		chCfg := channel.DefaultConfig()
		chCfg.NRx = 1
		chCfg.TxPowerDBm = 4
		u := beamforming.MUUser{Chan: channel.NewAt(chCfg, mcfg.AP, scen, rng.Split(9))}
		if *period == 0 {
			decisions := core.RunScenario(scen, core.DefaultPipelineConfig(), *seed+uint64(i))
			u.Sched = beamforming.Adaptive{Table: beamforming.MUAdaptiveTable}
			u.StateAt = func(t float64) core.State {
				for j := len(decisions) - 1; j >= 0; j-- {
					if decisions[j].Time <= t {
						return decisions[j].State
					}
				}
				return core.StateUnknown
			}
		} else {
			u.Sched = beamforming.FixedFeedback{T: *period / 1000}
		}
		users[i] = u
	}
	muCfg := beamforming.DefaultMUConfig()
	muCfg.Obs = ofl.Scope()
	defer ofl.Finish()
	res := beamforming.RunMU(users, muCfg, *duration)
	for i, mode := range modes {
		fmt.Printf("%-14s %6.1f Mbps\n", mode, res.PerUserMbps[i])
	}
	fmt.Printf("%-14s %6.1f Mbps (feedback airtime %.1f%%)\n",
		"total", res.TotalMbps, 100*res.FeedbackFraction)
}

//mobilint:stdout subcommand result tables are the byte-identical-stdout experiment output
func cmdSched(args []string) {
	fs := flag.NewFlagSet("sched", flag.ExitOnError)
	duration := fs.Float64("duration", 14, "seconds")
	seed := fs.Uint64("seed", 1, "RNG seed")
	parseArgs(fs, args)

	mkClients := func() []sched.Client {
		mk := func(i int, scen *mobility.Scenario) sched.Client {
			chCfg := channel.DefaultConfig()
			chCfg.TxPowerDBm = 2
			ch := channel.New(chCfg, scen, stats.NewRNG(*seed+uint64(i)*31+5))
			return sched.Client{
				Link:    mac.NewLink(ch, stats.NewRNG(*seed+uint64(i)*31+9)),
				Adapter: ratecontrol.NewAtheros(ratecontrol.DefaultLinkConfig()),
				StateAt: sim.OracleStateFunc(scen),
			}
		}
		mcfg := mobility.DefaultSceneConfig()
		mcfg.Duration = *duration
		away := mobility.NewMacroScenario(mobility.HeadingAway, mcfg, stats.NewRNG(*seed+1))
		toward := mobility.NewMacroScenario(mobility.HeadingToward, mcfg, stats.NewRNG(*seed+2))
		static := mobility.NewScenario(mobility.Static, mcfg, stats.NewRNG(*seed+3))
		return []sched.Client{mk(0, away), mk(1, toward), mk(2, static)}
	}
	for _, pol := range []sched.Policy{&sched.RoundRobin{}, sched.AirtimeFair{}, sched.MobilityAware{}} {
		res := sched.Run(mkClients(), pol, aggregation.Adaptive{}, *duration)
		fmt.Printf("%-16s total %6.1f Mbps  Jain %.2f  per-client %v\n",
			pol.Name(), res.TotalMbps, res.JainFairness, fmtSlice(res.PerClientMbps))
	}
}

func fmtSlice(xs []float64) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + "]"
}
