// Command benchstatus runs the repository's root benchmark suite and
// tracks its results as a committed JSON trajectory (BENCH_*.json), so
// hot-path performance regressions fail CI the same way mobilint findings
// do.
//
// Two modes:
//
//	benchstatus -o BENCH_pr3.json
//	    Run the benchmarks and write a normalized snapshot (ns/op, B/op,
//	    allocs/op per benchmark) to the given file.
//
//	benchstatus -check -baseline BENCH_pr5.json [-tol 0.35]
//	    Run the benchmarks and compare against the committed baseline.
//	    A benchmark regresses when its allocs/op or B/op exceed the
//	    baseline by more than 1% (which truncates to exact comparison
//	    for the micro-benchmarks — allocation counts are
//	    hardware-independent — while absorbing runtime background-
//	    allocation jitter on the long end-to-end benches; see
//	    allocTolFrac), or when its ns/op exceeds baseline*(1+tol)
//	    (tolerance absorbs machine-to-machine and run-to-run timing
//	    noise).
//
//	benchstatus -compare [-md] OLD.json NEW.json
//	    Diff two committed snapshots without running anything: a
//	    per-benchmark delta table (ns/op ratio, B/op, allocs/op, with
//	    added/removed benchmarks called out). This is how a PR's
//	    BENCH_prN.json rollover is summarized against the frozen
//	    previous baseline; -md emits a GitHub-flavored markdown table
//	    suitable for a CI job summary. Informational only — the exit
//	    code does not depend on the deltas.
//
// Exit codes mirror cmd/mobilint: 0 clean, 1 regression found, 2 usage or
// execution error.
//
// The tool is stdlib-only and shells out to the local go toolchain. It
// always runs the benchmarks from the module root so relative testdata
// paths resolve, and it strips the -GOMAXPROCS suffix from benchmark
// names so snapshots taken on machines with different core counts stay
// comparable.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// defaultBench selects the hot-path micro-benchmarks: the channel/CSI
// kernels every experiment funnels through, plus the end-to-end classifier
// and link pipelines that consume them. Full figure regeneration benches
// (BenchmarkFigure*) are excluded by default because their runtime would
// dominate CI; pass -bench '.' to snapshot everything.
const defaultBench = "^(BenchmarkChannelResponse|BenchmarkChannelMeasure|BenchmarkCSISimilarity|BenchmarkEffectiveSNR|BenchmarkClassifierPipeline|BenchmarkLinkSimSecond|BenchmarkStaticLinkSecond|BenchmarkStaticLinkSecondUncached|BenchmarkEnvLinkSecond|BenchmarkEnvLinkSecondUncached|BenchmarkWLANFleet|BenchmarkContendedFleet|BenchmarkScenarioFleet|BenchmarkSharedFleet|BenchmarkSharedFleetUnshared|BenchmarkZFPrecoder|BenchmarkCtlBatchEncode|BenchmarkCtlDeltaDecode|BenchmarkCtlCoordinatorReport|BenchmarkCtlLoadSchedule)$"

// Snapshot is the normalized on-disk form of one benchmark run.
type Snapshot struct {
	// Schema identifies the file format for future tooling.
	Schema string `json:"schema"`
	// Bench is the -bench regexp the snapshot was taken with.
	Bench string `json:"bench"`
	// Benchmarks maps benchmark name (sans -GOMAXPROCS suffix) to its
	// measured cost.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is the cost of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

const schemaID = "mobiwlan-bench/1"

//mobilint:stdout benchstatus's verdict table and ok/FAIL line are its CLI contract
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchstatus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", defaultBench, "benchmark selection regexp passed to go test -bench")
		benchtime = fs.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime)")
		count     = fs.Int("count", 1, "runs per benchmark; ns/op keeps the fastest run")
		out       = fs.String("o", "", "write the normalized snapshot JSON to this file")
		check     = fs.Bool("check", false, "compare the run against -baseline and fail on regression")
		baseline  = fs.String("baseline", "", "committed snapshot to compare against (required with -check)")
		tol       = fs.Float64("tol", 0.35, "allowed fractional ns/op slowdown vs baseline")
		compareTo = fs.Bool("compare", false, "diff two snapshot files (OLD NEW args) without running benchmarks")
		md        = fs.Bool("md", false, "with -compare, emit a markdown table (for CI job summaries)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compareTo {
		if fs.NArg() != 2 {
			_, _ = fmt.Fprintln(stderr, "benchstatus: -compare takes exactly two snapshot files: OLD NEW")
			return 2
		}
		oldSnap, err := readSnapshot(fs.Arg(0))
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
			return 2
		}
		newSnap, err := readSnapshot(fs.Arg(1))
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
			return 2
		}
		reportDelta(stdout, fs.Arg(0), fs.Arg(1), oldSnap, newSnap, *md)
		return 0
	}
	if *check && *baseline == "" {
		_, _ = fmt.Fprintln(stderr, "benchstatus: -check requires -baseline")
		return 2
	}
	if !*check && *out == "" {
		_, _ = fmt.Fprintln(stderr, "benchstatus: nothing to do: pass -o FILE to snapshot, -check -baseline FILE to gate, or -compare OLD NEW to diff")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
		return 2
	}
	snap, err := runBenchmarks(root, *bench, *benchtime, *count, stderr)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
		return 2
	}
	if len(snap.Benchmarks) == 0 {
		_, _ = fmt.Fprintf(stderr, "benchstatus: no benchmarks matched %q\n", *bench)
		return 2
	}

	if *out != "" {
		if err := writeSnapshot(*out, snap); err != nil {
			_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
			return 2
		}
		_, _ = fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
	if *check {
		base, err := readSnapshot(*baseline)
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "benchstatus: %v\n", err)
			return 2
		}
		regressions := compare(base, snap, *tol)
		report(stdout, base, snap, *tol)
		if len(regressions) > 0 {
			_, _ = fmt.Fprintf(stdout, "FAIL: %d benchmark regression(s) vs %s\n", len(regressions), *baseline)
			return 1
		}
		_, _ = fmt.Fprintf(stdout, "ok: no regressions vs %s (ns tolerance %.0f%%)\n", *baseline, *tol*100)
	}
	return 0
}

// moduleRoot locates the directory holding go.mod via the go tool, so the
// benchmarks always run against the repository's root package regardless
// of the invoking directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a go module")
	}
	return filepath.Dir(gomod), nil
}

// runBenchmarks executes the root-package benchmarks and parses the
// standard testing output into a Snapshot. With -count > 1, ns/op keeps
// the fastest run (least scheduler noise) while B/op and allocs/op keep
// the maximum (they are deterministic; any variation is a real allocation
// on some path).
func runBenchmarks(root, bench, benchtime string, count int, stderr *os.File) (Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if count > 1 {
		args = append(args, "-count", strconv.Itoa(count))
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return Snapshot{}, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.String())
	}
	snap := Snapshot{Schema: schemaID, Bench: bench, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		name, res, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := snap.Benchmarks[name]; seen {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp > res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		snap.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("scanning go test output: %w", err)
	}
	return snap, nil
}

// parseBenchLine parses one `BenchmarkName-N  iters  X ns/op  Y B/op  Z
// allocs/op` line. Lines without the -benchmem columns (or non-benchmark
// output) report ok = false.
func parseBenchLine(line string) (string, Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	f := strings.Fields(line)
	// name iters ns "ns/op" b "B/op" allocs "allocs/op"
	if len(f) < 8 {
		return "", Result{}, false
	}
	var res Result
	var err error
	for i := 2; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(f[i], 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(f[i], 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(f[i], 10, 64)
		}
		if err != nil {
			return "", Result{}, false
		}
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix (Benchmark benchmarks only gain one on
	// multi-core machines, so snapshots must normalize it away).
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// Sub-benchmark names keep their /case suffix as-is.
	return name, res, true
}

func writeSnapshot(path string, snap Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	return nil
}

func readSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("reading baseline: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if snap.Schema != schemaID {
		return Snapshot{}, fmt.Errorf("%s: unsupported schema %q (want %q)", path, snap.Schema, schemaID)
	}
	return snap, nil
}

// regression describes one benchmark that got worse than the baseline.
type regression struct {
	name, what string
}

// allocTolFrac is the fractional headroom on allocs/op and B/op before a
// count is a regression. Integer truncation keeps the micro-benchmark
// contract exact: 1% of anything under 100 allocs/op rounds to zero
// slack, so the 0-alloc hot path (and every small-count pipeline bench)
// still gates on strict equality. The long end-to-end benchmarks — whole
// link-seconds, the WLAN fleet — run tens to hundreds of milliseconds
// per op, so their totals pick up a few bytes of runtime background
// allocation (GC bookkeeping, goroutine stack churn) plus per-op
// integer-division rounding; the slack absorbs that jitter without
// letting a real allocation through (one extra alloc per op needs a
// baseline above 100 allocs/op to hide, and a leaked buffer exceeds 1%
// of a multi-KB footprint immediately).
const allocTolFrac = 0.01

// allocSlack returns the absolute headroom for a baseline count.
func allocSlack(base int64) int64 {
	return int64(float64(base) * allocTolFrac)
}

// compare returns the regressions of cur against base. Benchmarks present
// only in cur are ignored (new coverage); benchmarks present only in base
// fail, so a hot-path benchmark cannot silently disappear.
func compare(base, cur Snapshot, tol float64) []regression {
	var out []regression
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			out = append(out, regression{name, "missing from current run"})
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp+allocSlack(b.AllocsPerOp) {
			out = append(out, regression{name, fmt.Sprintf("allocs/op %d > baseline %d", c.AllocsPerOp, b.AllocsPerOp)})
		}
		if c.BytesPerOp > b.BytesPerOp+allocSlack(b.BytesPerOp) {
			out = append(out, regression{name, fmt.Sprintf("B/op %d > baseline %d", c.BytesPerOp, b.BytesPerOp)})
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			out = append(out, regression{name, fmt.Sprintf("ns/op %.1f > baseline %.1f +%.0f%%", c.NsPerOp, b.NsPerOp, tol*100)})
		}
	}
	return out
}

// report prints a per-benchmark comparison table with the regression
// verdicts inline.
func report(w *os.File, base, cur Snapshot, tol float64) {
	_, _ = fmt.Fprintf(w, "%-32s %14s %14s %8s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "allocs", "vs base", "verdict")
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			_, _ = fmt.Fprintf(w, "%-32s %14.1f %14s %8s %8s  MISSING\n", name, b.NsPerOp, "-", "-", "-")
			continue
		}
		verdict := "ok"
		switch {
		case c.AllocsPerOp > b.AllocsPerOp+allocSlack(b.AllocsPerOp) ||
			c.BytesPerOp > b.BytesPerOp+allocSlack(b.BytesPerOp):
			verdict = "ALLOC REGRESSION"
		case c.NsPerOp > b.NsPerOp*(1+tol):
			verdict = "TIME REGRESSION"
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp / b.NsPerOp
		}
		_, _ = fmt.Fprintf(w, "%-32s %14.1f %14.1f %8d %7.2fx  %s\n", name, b.NsPerOp, c.NsPerOp, c.AllocsPerOp, ratio, verdict)
	}
}

// reportDelta prints the per-benchmark diff of two snapshots — the
// trajectory view of a baseline rollover. Ratios below 1.00x are
// speedups. Benchmarks present in only one snapshot are listed as added
// or removed rather than silently dropped, so coverage changes are as
// visible as cost changes.
func reportDelta(w *os.File, oldName, newName string, oldSnap, newSnap Snapshot, md bool) {
	names := map[string]bool{}
	for name := range oldSnap.Benchmarks {
		names[name] = true
	}
	for name := range newSnap.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	if md {
		_, _ = fmt.Fprintf(w, "### Benchmark delta: %s → %s\n\n", oldName, newName)
		_, _ = fmt.Fprintln(w, "| benchmark | old ns/op | new ns/op | ratio | old allocs | new allocs | old B/op | new B/op |")
		_, _ = fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|")
	} else {
		_, _ = fmt.Fprintf(w, "benchmark delta: %s -> %s\n", oldName, newName)
		_, _ = fmt.Fprintf(w, "%-34s %14s %14s %8s %16s %18s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs old->new", "B/op old->new")
	}
	for _, name := range sorted {
		o, haveOld := oldSnap.Benchmarks[name]
		n, haveNew := newSnap.Benchmarks[name]
		switch {
		case !haveOld:
			if md {
				_, _ = fmt.Fprintf(w, "| %s | - | %.1f | added | - | %d | - | %d |\n", name, n.NsPerOp, n.AllocsPerOp, n.BytesPerOp)
			} else {
				_, _ = fmt.Fprintf(w, "%-34s %14s %14.1f %8s %16s %18s\n", name, "-", n.NsPerOp, "added", fmt.Sprintf("- -> %d", n.AllocsPerOp), fmt.Sprintf("- -> %d", n.BytesPerOp))
			}
		case !haveNew:
			if md {
				_, _ = fmt.Fprintf(w, "| %s | %.1f | - | removed | %d | - | %d | - |\n", name, o.NsPerOp, o.AllocsPerOp, o.BytesPerOp)
			} else {
				_, _ = fmt.Fprintf(w, "%-34s %14.1f %14s %8s %16s %18s\n", name, o.NsPerOp, "-", "removed", fmt.Sprintf("%d -> -", o.AllocsPerOp), fmt.Sprintf("%d -> -", o.BytesPerOp))
			}
		default:
			ratio := 0.0
			if o.NsPerOp > 0 {
				ratio = n.NsPerOp / o.NsPerOp
			}
			if md {
				_, _ = fmt.Fprintf(w, "| %s | %.1f | %.1f | %.2fx | %d | %d | %d | %d |\n",
					name, o.NsPerOp, n.NsPerOp, ratio, o.AllocsPerOp, n.AllocsPerOp, o.BytesPerOp, n.BytesPerOp)
			} else {
				_, _ = fmt.Fprintf(w, "%-34s %14.1f %14.1f %7.2fx %16s %18s\n",
					name, o.NsPerOp, n.NsPerOp, ratio,
					fmt.Sprintf("%d -> %d", o.AllocsPerOp, n.AllocsPerOp),
					fmt.Sprintf("%d -> %d", o.BytesPerOp, n.BytesPerOp))
			}
		}
	}
}

func sortedNames(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
