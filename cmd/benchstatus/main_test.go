package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkChannelResponse-8   \t  212310\t      5630 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok || name != "BenchmarkChannelResponse" {
		t.Fatalf("parse failed: ok=%v name=%q", ok, name)
	}
	if res.NsPerOp != 5630 || res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Fatalf("bad result %+v", res)
	}
	if _, _, ok := parseBenchLine("PASS"); ok {
		t.Fatal("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkX-8 10 5 ns/op"); ok {
		t.Fatal("line without -benchmem columns parsed")
	}
	// Sub-benchmark names keep their /case path; only -GOMAXPROCS strips.
	name, _, ok = parseBenchLine("BenchmarkParallelTrials/jobs1-16 \t 100\t 10 ns/op\t 0 B/op\t 0 allocs/op")
	if !ok || name != "BenchmarkParallelTrials/jobs1" {
		t.Fatalf("sub-benchmark name: ok=%v name=%q", ok, name)
	}
}

func TestCompare(t *testing.T) {
	base := Snapshot{Benchmarks: map[string]Result{
		"A": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"B": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"C": {NsPerOp: 100},
	}}
	cur := Snapshot{Benchmarks: map[string]Result{
		"A": {NsPerOp: 120, BytesPerOp: 8, AllocsPerOp: 1}, // alloc regression (0 baseline: zero slack)
		"B": {NsPerOp: 200, BytesPerOp: 1000, AllocsPerOp: 10},
		// C missing: must fail rather than vanish
		"D": {NsPerOp: 5}, // new coverage: ignored
	}}
	regs := compare(base, cur, 0.35)
	var got []string
	for _, r := range regs {
		got = append(got, r.name)
	}
	want := []string{"A", "A", "B", "C"} // A allocs + A bytes, B time, C missing
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("regressions %v, want %v", got, want)
	}
}

func TestAllocSlackTruncates(t *testing.T) {
	// Under 100 allocs the 1% slack truncates to zero: exact gate.
	for _, base := range []int64{0, 1, 50, 99} {
		if allocSlack(base) != 0 {
			t.Fatalf("allocSlack(%d) = %d, want 0", base, allocSlack(base))
		}
	}
	if allocSlack(1524) != 15 {
		t.Fatalf("allocSlack(1524) = %d, want 15", allocSlack(1524))
	}
}

// captureDelta renders reportDelta through a real temp file (the function
// writes to *os.File) and returns the text.
func captureDelta(t *testing.T, oldSnap, newSnap Snapshot, md bool) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reportDelta(f, "OLD.json", "NEW.json", oldSnap, newSnap, md)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestReportDelta(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: map[string]Result{
		"BenchmarkFleet": {NsPerOp: 200, BytesPerOp: 900, AllocsPerOp: 30},
		"BenchmarkGone":  {NsPerOp: 50},
	}}
	newSnap := Snapshot{Benchmarks: map[string]Result{
		"BenchmarkFleet": {NsPerOp: 100, BytesPerOp: 800, AllocsPerOp: 20},
		"BenchmarkNew":   {NsPerOp: 10, BytesPerOp: 1, AllocsPerOp: 1},
	}}

	text := captureDelta(t, oldSnap, newSnap, false)
	for _, want := range []string{"0.50x", "30 -> 20", "900 -> 800", "added", "removed", "OLD.json -> NEW.json"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text delta missing %q:\n%s", want, text)
		}
	}

	mdOut := captureDelta(t, oldSnap, newSnap, true)
	for _, want := range []string{"| BenchmarkFleet | 200.0 | 100.0 | 0.50x | 30 | 20 | 900 | 800 |", "| added |", "| removed |", "|---|"} {
		if !strings.Contains(mdOut, want) {
			t.Fatalf("markdown delta missing %q:\n%s", want, mdOut)
		}
	}
}

// TestCompareModeEndToEnd drives run() through the -compare path with real
// snapshot files, including the usage and schema failure modes.
func TestCompareModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := write("old.json", `{"schema":"mobiwlan-bench/1","bench":".","benchmarks":{"BenchmarkX":{"ns_per_op":10,"b_per_op":0,"allocs_per_op":0}}}`)
	newPath := write("new.json", `{"schema":"mobiwlan-bench/1","bench":".","benchmarks":{"BenchmarkX":{"ns_per_op":5,"b_per_op":0,"allocs_per_op":0}}}`)
	badPath := write("bad.json", `{"schema":"other/9"}`)

	stdout, err := os.CreateTemp(dir, "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if code := run([]string{"-compare", oldPath, newPath}, stdout, devnull); code != 0 {
		t.Fatalf("compare exit %d, want 0", code)
	}
	out, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(out), "0.50x") {
		t.Fatalf("compare output missing ratio:\n%s", out)
	}
	// Flags must precede positionals (stdlib flag stops at the first
	// non-flag arg) — this is the exact shape the CI job-summary step uses.
	if code := run([]string{"-compare", "-md", oldPath, newPath}, stdout, devnull); code != 0 {
		t.Fatalf("markdown compare exit %d, want 0", code)
	}
	out, _ = os.ReadFile(stdout.Name())
	if !strings.Contains(string(out), "| BenchmarkX | 10.0 | 5.0 | 0.50x |") {
		t.Fatalf("markdown compare output missing table row:\n%s", out)
	}
	if code := run([]string{"-compare", oldPath}, stdout, devnull); code != 2 {
		t.Fatalf("one-arg compare exit %d, want 2", code)
	}
	if code := run([]string{"-compare", oldPath, badPath}, stdout, devnull); code != 2 {
		t.Fatalf("bad-schema compare exit %d, want 2", code)
	}
}
