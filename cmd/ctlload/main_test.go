package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// smokeArgs is the invocation CI's smoke step replays from the shell;
// its stdout is pinned byte-for-byte in testdata/smoke.golden.
var smokeArgs = []string{"-aps", "16", "-clients", "2", "-reports", "25", "-jobs", "4"}

func TestSmokeGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/smoke.golden")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(smokeArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("stdout diverged from testdata/smoke.golden:\n--- got ---\n%s--- want ---\n%s",
			stdout.String(), want)
	}
}

// TestSmokeJobsIndependence reruns the smoke workload at other worker
// counts; stdout must not move.
func TestSmokeJobsIndependence(t *testing.T) {
	var base bytes.Buffer
	if code := run(smokeArgs, &base, &bytes.Buffer{}); code != 0 {
		t.Fatalf("base run exited %d", code)
	}
	for _, jobs := range []string{"1", "16"} {
		args := append([]string{}, smokeArgs[:len(smokeArgs)-1]...)
		args = append(args, jobs)
		var stdout bytes.Buffer
		if code := run(args, &stdout, &bytes.Buffer{}); code != 0 {
			t.Fatalf("-jobs %s exited %d", jobs, code)
		}
		if !bytes.Equal(stdout.Bytes(), base.Bytes()) {
			t.Fatalf("-jobs %s diverged:\n%s\nvs\n%s", jobs, stdout.String(), base.String())
		}
	}
}

func TestHashOnly(t *testing.T) {
	var stdout bytes.Buffer
	if code := run([]string{"-hash-only"}, &stdout, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "fleet_hash=0x") || strings.Count(out, "\n") != 1 {
		t.Fatalf("unexpected -hash-only output: %q", out)
	}
	// The pinned default-config hash (see internal/loadgen): -hash-only
	// with ctlload's own defaults uses a different fleet size, so just
	// check stability across calls.
	var again bytes.Buffer
	run([]string{"-hash-only"}, &again, &bytes.Buffer{})
	if again.String() != out {
		t.Fatal("-hash-only not stable")
	}
}

func TestDumpSchedule(t *testing.T) {
	var stdout bytes.Buffer
	args := []string{"-dump-schedule", "-aps", "2", "-clients", "1", "-reports", "13"}
	if code := run(args, &stdout, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Count(stdout.String(), "\n")
	if lines != 2*1*13 {
		t.Fatalf("dump has %d lines, want 26", lines)
	}
	if !strings.Contains(stdout.String(), "trig=true") {
		t.Fatal("no trigger in a 13-report schedule with roam-every 12")
	}
}

func TestBadFlagsExitCode(t *testing.T) {
	cases := [][]string{
		{"-aps", "0"},
		{"-batch", "100000"},
		{"-policy", "explode"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if code := run(args, &bytes.Buffer{}, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestPolicyAndV1Paths exercises the disconnect policy and the v1
// unbatched path end to end (nothing should drop at these sizes, so
// both exit clean).
func TestPolicyAndV1Paths(t *testing.T) {
	for _, args := range [][]string{
		{"-aps", "4", "-clients", "1", "-reports", "13", "-policy", "disconnect"},
		{"-aps", "4", "-clients", "1", "-reports", "13", "-batch", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d; stderr:\n%s", args, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "dropped=0 out_dropped=0") {
			t.Fatalf("%v: unexpected drops:\n%s", args, stdout.String())
		}
	}
}
