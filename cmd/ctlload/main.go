// Command ctlload is the deterministic control-plane load generator:
// it replays a seed-split fleet of simulated APs (internal/loadgen)
// against a sharded ctlproto controller and reports what happened.
//
// By default it embeds its own controller, so one invocation is a
// closed experiment; -addr points it at an external controller instead.
// Everything on stdout is a pure function of the workload flags —
// schedule hash, traffic counters, decision counts, decision-latency
// percentiles — and is byte-identical at any -jobs, which CI's smoke
// step pins against a golden file. Wall-clock facts (elapsed time,
// reports/sec, allocations) go to stderr.
//
// Examples:
//
//	ctlload -aps 1000 -clients 2 -reports 25        # the soak fleet
//	ctlload -hash-only                              # schedule fingerprint
//	ctlload -dump-schedule | head                   # the wire schedule
//
// See docs/OPERATIONS.md for the full recipe, including the 10k-AP run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mobiwlan/internal/ctlproto"
	"mobiwlan/internal/loadgen"
	"mobiwlan/internal/obs"
	"mobiwlan/internal/transport"
)

//mobilint:stdout the run summary is the byte-identical-stdout experiment output
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code exposed for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctlload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "root RNG seed (split per AP, then per client)")
	aps := fs.Int("aps", 64, "simulated APs (one session each)")
	clients := fs.Int("clients", 2, "clients per AP")
	reports := fs.Int("reports", 25, "reports per client")
	period := fs.Float64("period", 1, "telemetry burst period in sim seconds")
	burst := fs.Int("burst", 4, "reports per telemetry burst")
	roamEvery := fs.Int("roam-every", 12, "every Nth report of a client is macro-away (0 = no triggers)")
	minInterval := fs.Float64("min-interval", 1, "controller roam throttle in sim seconds")
	batch := fs.Int("batch", 64, "v2 delta-batch size (0 or 1 = plain v1 reports)")
	snapshotEvery := fs.Int("snapshot-every", 0, "per-client snapshot interval in batches (0 = default)")
	jobs := fs.Int("jobs", 4, "concurrent sender workers (results are identical at any value)")
	shards := fs.Int("shards", 8, "controller report-processing shards (embedded controller only)")
	queueDepth := fs.Int("queue-depth", 16384, "per-shard inbound queue depth")
	sendQueueDepth := fs.Int("send-queue-depth", 256, "per-session outbound queue depth")
	policy := fs.String("policy", "drop", "overflow policy: drop or disconnect")
	fanout := fs.Int("fanout", 8, "measure-request fan-out per round")
	addr := fs.String("addr", "", "external controller address (default: embed one)")
	rate := fs.Float64("rate", 0, "replay speed in sim seconds per wall second (0 = as fast as possible)")
	timeoutS := fs.Float64("timeout", 30, "directive wait in wall seconds before a round counts as timed out")
	hashOnly := fs.Bool("hash-only", false, "print the fleet schedule hash and exit")
	dumpSchedule := fs.Bool("dump-schedule", false, "print the full wire schedule and exit")
	metrics := fs.Bool("metrics", false, "dump the controller metric registry as text to stderr at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := loadgen.Config{
		Seed:             *seed,
		APs:              *aps,
		ClientsPerAP:     *clients,
		ReportsPerClient: *reports,
		Telemetry:        transport.Telemetry{Period: *period, Burst: *burst},
		RoamEvery:        *roamEvery,
		MinInterval:      *minInterval,
		BatchSize:        *batch,
		SnapshotEvery:    *snapshotEvery,
	}
	if err := cfg.Validate(); err != nil {
		_, _ = fmt.Fprintln(stderr, "ctlload:", err)
		return 2
	}

	if *hashOnly {
		printHash(stdout, cfg)
		return 0
	}
	if *dumpSchedule {
		if err := loadgen.WriteSchedule(stdout, cfg); err != nil {
			_, _ = fmt.Fprintln(stderr, "ctlload:", err)
			return 1
		}
		return 0
	}

	var pol ctlproto.OverflowPolicy
	switch *policy {
	case "drop":
		pol = ctlproto.PolicyDrop
	case "disconnect":
		pol = ctlproto.PolicyDisconnect
	default:
		_, _ = fmt.Fprintf(stderr, "ctlload: unknown -policy %q (want drop or disconnect)\n", *policy)
		return 2
	}

	// Embedded controller, unless -addr points at an external one.
	reg := obs.NewRegistry()
	var srv *ctlproto.Server
	target := *addr
	if target == "" {
		log := &ctlproto.DecisionLog{}
		coord := ctlproto.NewCoordinator()
		coord.MinInterval = cfg.MinInterval
		coord.MaxFanout = *fanout
		coord.Met = ctlproto.NewMetrics(reg, nil)
		coord.Log = log
		var err error
		srv, err = ctlproto.NewServerConfig("127.0.0.1:0", coord, ctlproto.Config{
			Shards:         *shards,
			QueueDepth:     *queueDepth,
			SendQueueDepth: *sendQueueDepth,
			Policy:         pol,
		})
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "ctlload:", err)
			return 1
		}
		srv.SetMetrics(coord.Met)
		target = srv.Addr()
	}

	eng, err := loadgen.New(cfg, target)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "ctlload:", err)
		return 1
	}
	if err := eng.Connect(); err != nil {
		_, _ = fmt.Fprintln(stderr, "ctlload:", err)
		return 1
	}
	if srv != nil && !waitRegistered(srv, cfg.APs) {
		_, _ = fmt.Fprintf(stderr, "ctlload: only %d/%d sessions registered\n", len(srv.APs()), cfg.APs)
		return 1
	}

	hooks := loadgen.Hooks{
		Timeout: func(d float64) <-chan struct{} {
			ch := make(chan struct{})
			time.AfterFunc(time.Duration(d*float64(time.Second)), func() { close(ch) })
			return ch
		},
		TimeoutS: *timeoutS,
	}
	if *rate > 0 {
		start := time.Now()
		r := *rate
		hooks.Pace = func(simTime float64) {
			wall := time.Duration(simTime / r * float64(time.Second))
			if ahead := wall - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	eng.Stream(*jobs, hooks)
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	stats := eng.Stats()

	eng.Close()
	if srv != nil {
		if err := srv.Close(); err != nil {
			_, _ = fmt.Fprintln(stderr, "ctlload:", err)
			return 1
		}
	}

	printResult(stdout, cfg, stats, srv, reg)
	printWall(stderr, stats, elapsed, ms1.Mallocs-ms0.Mallocs)
	if *metrics {
		if err := reg.WriteText(stderr); err != nil {
			_, _ = fmt.Fprintln(stderr, "ctlload:", err)
		}
	}

	if stats.Errors != 0 || stats.Timeouts != 0 {
		_, _ = fmt.Fprintf(stderr, "ctlload: degraded run: %d errors, %d timeouts\n", stats.Errors, stats.Timeouts)
		return 1
	}
	return 0
}

// waitRegistered polls until the embedded controller sees all sessions.
func waitRegistered(srv *ctlproto.Server, want int) bool {
	deadline := time.Now().Add(30 * time.Second)
	for len(srv.APs()) < want {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// printHash emits the schedule fingerprint.
//
//mobilint:stdout the fleet hash is the deterministic experiment output
func printHash(w io.Writer, cfg loadgen.Config) {
	_, _ = fmt.Fprintf(w, "fleet_hash=%#x\n", loadgen.HashFleet(cfg))
}

// printResult emits the deterministic run summary: schedule hash,
// traffic counters, conservation, and decision-latency percentiles.
// Every value is a pure function of the workload flags (latencies are
// sim-time aggregates, not wall measurements), so runs golden-diff.
//
//mobilint:stdout the run summary is the byte-identical-stdout experiment output
func printResult(w io.Writer, cfg loadgen.Config, stats loadgen.Stats, srv *ctlproto.Server, reg *obs.Registry) {
	printHash(w, cfg)
	_, _ = fmt.Fprintf(w, "reports=%d frames=%d triggers=%d directives=%d answered=%d timeouts=%d errors=%d\n",
		stats.ReportsSent, stats.FramesSent, stats.Triggers, stats.DirectivesReceived,
		stats.RequestsAnswered, stats.Timeouts, stats.Errors)
	if srv == nil {
		return // external controller: its counters are not ours to print
	}
	recv := reg.Counter("ctlproto.shard.received").Value()
	proc := reg.Counter("ctlproto.shard.processed").Value()
	drop := reg.Counter("ctlproto.shard.dropped").Value()
	outDrop := reg.Counter("ctlproto.out.dropped").Value()
	_, _ = fmt.Fprintf(w, "conservation received=%d processed=%d dropped=%d out_dropped=%d\n",
		recv, proc, drop, outDrop)
	lat := reg.Histogram("ctlproto.decision-latency_s", 1)
	_, _ = fmt.Fprintf(w, "decisions=%d roamed=%d lat_p50_us=%d lat_p90_us=%d lat_p99_us=%d\n",
		lat.Count(), reg.Counter("ctlproto.roam.directives").Value(),
		quantUS(lat, 0.50), quantUS(lat, 0.90), quantUS(lat, 0.99))
}

// quantUS renders a latency quantile in whole microseconds.
func quantUS(h *obs.Histogram, q float64) int64 {
	return int64(h.Quantile(q)*1e6 + 0.5)
}

// printWall emits the wall-clock facts: not deterministic, stderr only.
func printWall(w io.Writer, stats loadgen.Stats, elapsed time.Duration, mallocs uint64) {
	secs := elapsed.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(stats.ReportsSent) / secs
	}
	perReport := 0.0
	if stats.ReportsSent > 0 {
		perReport = float64(mallocs) / float64(stats.ReportsSent)
	}
	_, _ = fmt.Fprintf(w, "ctlload: %.3fs wall, %.0f reports/s, %.1f allocs/report (process-wide)\n",
		secs, rate, perReport)
}
